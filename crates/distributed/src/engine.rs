//! Synchronous message-passing engine on the tree network.
//!
//! The paper's distributed model: in every round each node may exchange
//! messages with its tree neighbors and do local work. The engine delivers
//! all messages sent in round `r` at the start of round `r + 1`, enforces
//! that messages only travel along switches, and keeps the counters the
//! distributed-time experiments report (rounds, total messages, and the
//! busiest node-round).

use hbn_topology::{Network, NodeId};

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Maximum number of messages any single node sent in one round — the
    /// per-round `O(degree)` term of the paper's bound.
    pub max_node_round_messages: u64,
}

/// A synchronous engine delivering messages of type `M` along tree edges.
#[derive(Debug)]
pub struct Engine<M> {
    inboxes: Vec<Vec<(NodeId, M)>>,
    next: Vec<Vec<(NodeId, M)>>,
    stats: EngineStats,
}

/// Send handle passed to the per-node step closure.
pub struct Outbox<'a, M> {
    from: NodeId,
    net: &'a Network,
    next: &'a mut Vec<Vec<(NodeId, M)>>,
    sent: u64,
}

impl<M> Outbox<'_, M> {
    /// Send `msg` to a tree neighbor `to` for delivery next round.
    ///
    /// # Panics
    /// Panics if `to` is not adjacent to the sending node.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let adjacent = self.net.parent(self.from) == to && self.from != self.net.root()
            || self.net.parent(to) == self.from && to != self.net.root();
        assert!(adjacent, "{} -> {to} is not a switch", self.from);
        self.next[to.index()].push((self.from, msg));
        self.sent += 1;
    }
}

impl<M> Engine<M> {
    /// A fresh engine for `net`.
    pub fn new(net: &Network) -> Self {
        Engine {
            inboxes: (0..net.n_nodes()).map(|_| Vec::new()).collect(),
            next: (0..net.n_nodes()).map(|_| Vec::new()).collect(),
            stats: EngineStats::default(),
        }
    }

    /// Run one round: every node sees its inbox (messages sent last round)
    /// and may send messages via the outbox. Returns the number of
    /// messages sent this round.
    pub fn step<F>(&mut self, net: &Network, mut node_step: F) -> u64
    where
        F: FnMut(NodeId, &[(NodeId, M)], &mut Outbox<'_, M>),
    {
        self.stats.rounds += 1;
        let mut sent_this_round = 0u64;
        for v in net.nodes() {
            let inbox = std::mem::take(&mut self.inboxes[v.index()]);
            let mut outbox = Outbox { from: v, net, next: &mut self.next, sent: 0 };
            node_step(v, &inbox, &mut outbox);
            self.stats.max_node_round_messages =
                self.stats.max_node_round_messages.max(outbox.sent);
            sent_this_round += outbox.sent;
        }
        self.stats.messages += sent_this_round;
        std::mem::swap(&mut self.inboxes, &mut self.next);
        sent_this_round
    }

    /// Whether any undelivered messages remain.
    pub fn idle(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty)
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, BandwidthProfile};

    /// Flood a token from the root; every node must receive it exactly
    /// once, in `height` rounds.
    #[test]
    fn broadcast_takes_height_rounds() {
        let net = balanced(2, 3, BandwidthProfile::Uniform);
        let mut engine: Engine<u32> = Engine::new(&net);
        let mut received = vec![false; net.n_nodes()];
        received[net.root().index()] = true;
        // Round 1: the root seeds its children.
        let mut first = true;
        let mut rounds = 0;
        loop {
            let root = net.root();
            let sent = engine.step(&net, |v, inbox, out| {
                if first && v == root {
                    for &c in net.children(v) {
                        out.send(c, 7);
                    }
                }
                for &(_, tok) in inbox {
                    assert!(!received[v.index()], "duplicate delivery at {v}");
                    received[v.index()] = true;
                    assert_eq!(tok, 7);
                    for &c in net.children(v) {
                        out.send(c, tok);
                    }
                }
            });
            first = false;
            rounds += 1;
            if sent == 0 && engine.idle() {
                break;
            }
        }
        assert!(received.iter().all(|&r| r));
        assert_eq!(rounds as u32, net.height() + 1, "seed round plus one hop per level");
        assert_eq!(engine.stats().messages as usize, net.n_nodes() - 1);
    }

    /// Convergecast: leaves report 1, inner nodes sum; the root total must
    /// equal the leaf count.
    #[test]
    fn convergecast_sums_leaves() {
        let net = balanced(3, 2, BandwidthProfile::Uniform);
        let mut engine: Engine<u64> = Engine::new(&net);
        let mut acc = vec![0u64; net.n_nodes()];
        let mut reported = vec![0usize; net.n_nodes()];
        let mut sent_up = vec![false; net.n_nodes()];
        let mut root_total = None;
        for _ in 0..net.height() + 2 {
            let root = net.root();
            engine.step(&net, |v, inbox, out| {
                for &(from, val) in inbox {
                    acc[v.index()] += val;
                    reported[v.index()] += 1;
                    let _ = from;
                }
                let ready = reported[v.index()] == net.children(v).len();
                if ready && !sent_up[v.index()] {
                    sent_up[v.index()] = true;
                    let total = acc[v.index()] + u64::from(net.is_processor(v));
                    if v == root {
                        root_total = Some(total);
                    } else {
                        out.send(net.parent(v), total);
                    }
                }
            });
        }
        assert_eq!(root_total, Some(net.n_processors() as u64));
    }

    #[test]
    #[should_panic(expected = "is not a switch")]
    fn sending_to_non_neighbor_panics() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let mut engine: Engine<u8> = Engine::new(&net);
        let procs = net.processors().to_vec();
        engine.step(&net, |v, _, out| {
            if v == procs[0] {
                out.send(procs[1], 1); // two leaves are never adjacent
            }
        });
    }

    #[test]
    fn stats_track_busiest_node() {
        let net = balanced(4, 1, BandwidthProfile::Uniform); // star-ish: root with 4 leaves
        let mut engine: Engine<u8> = Engine::new(&net);
        let root = net.root();
        engine.step(&net, |v, _, out| {
            if v == root {
                for &c in net.children(v) {
                    out.send(c, 0);
                }
            }
        });
        assert_eq!(engine.stats().max_node_round_messages, 4);
        assert_eq!(engine.stats().rounds, 1);
    }
}
