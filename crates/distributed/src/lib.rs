//! # hbn-distributed
//!
//! Distributed execution of the extended-nibble strategy on the tree
//! network itself, validating the paper's distributed time bound
//! `O(|X| · |P ∪ B| · log(degree(T)) + height(T))`.
//!
//! [`engine`] provides a synchronous message-passing engine (messages only
//! travel along switches; rounds, messages and per-node-round fan-out are
//! counted). [`nibble_dist`] runs the nibble strategy as a real protocol —
//! four pipelined tree sweeps per object. [`schedule`] accounts the
//! deletion and mapping phases round by round.

#![warn(missing_docs)]

pub mod engine;
pub mod nibble_dist;
pub mod schedule;

pub use engine::{Engine, EngineStats, Outbox};
pub use nibble_dist::{distributed_nibble, DistributedNibble};
pub use schedule::{distributed_schedule, DistributedCost};
