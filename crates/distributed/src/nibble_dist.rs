//! Fully message-passing distributed nibble strategy (paper, Section 3.1):
//! each object needs four pipelined tree sweeps, and objects are injected
//! one per round, giving `O(|X| + height(T))` rounds with `O(degree)`
//! messages per node and round — the distributed bound quoted in the
//! paper for the placement of all objects.
//!
//! Sweeps per object `x`:
//!
//! 1. **Up-sum** (convergecast): subtree totals `(h, w)`.
//! 2. **Down-complement**: each node learns the weight of the component on
//!    its parent side, so it can evaluate the gravity-center condition
//!    locally.
//! 3. **Up-min**: convergecast of the smallest-index gravity candidate.
//! 4. **Down-announce**: the root broadcasts `g(x)`; the arrival direction
//!    tells every node which neighbor points towards `g`, which is exactly
//!    what the copy rule `h(T_g(v)) > w(T)` needs.

use crate::engine::{Engine, EngineStats};
use hbn_topology::{Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};

/// Message alphabet of the distributed nibble.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Subtree sums `(h, w)` flowing towards the root.
    UpSum { x: u32, h: u64, w: u64 },
    /// Parent-side complement `(h, w)` flowing towards the leaves.
    DownComp { x: u32, h: u64, w: u64 },
    /// Smallest gravity candidate in the subtree (or `None`).
    UpMin { x: u32, candidate: Option<NodeId> },
    /// The elected center of gravity.
    DownG { x: u32, g: NodeId },
}

#[derive(Debug, Clone, Default)]
struct PerObject {
    /// Own weight plus received child sums.
    sum_h: u64,
    sum_w: u64,
    child_reports: usize,
    child_sums: Vec<(NodeId, u64, u64)>,
    sent_up_sum: bool,
    comp: Option<(u64, u64)>,
    sent_comp: bool,
    min_candidate: Option<NodeId>,
    min_from_child: Option<NodeId>,
    min_reports: usize,
    sent_up_min: bool,
    decided: bool,
    has_copy: bool,
}

/// Result of the distributed run.
#[derive(Debug, Clone)]
pub struct DistributedNibble {
    /// Copy nodes per object (sorted), identical to the sequential nibble.
    pub copies: Vec<Vec<NodeId>>,
    /// Per-object gravity centers.
    pub gravity: Vec<Option<NodeId>>,
    /// Engine counters (rounds, messages, busiest node-round).
    pub stats: EngineStats,
}

/// Run the distributed nibble for all objects of `matrix` on `net`.
///
/// # Panics
/// Panics if the protocol fails to converge within the provable round
/// bound (`|X| + 4·(height+1) + 4`), which would indicate an engine bug.
pub fn distributed_nibble(net: &Network, matrix: &AccessMatrix) -> DistributedNibble {
    let n = net.n_nodes();
    let n_objects = matrix.n_objects();
    // Injection schedule: object x's leaves start in round x (0-based),
    // skipping zero-weight objects entirely.
    let active: Vec<ObjectId> = matrix.objects().filter(|&x| matrix.total_weight(x) > 0).collect();

    let mut state: Vec<Vec<PerObject>> = vec![vec![PerObject::default(); active.len()]; n];
    let mut gravity: Vec<Option<NodeId>> = vec![None; n_objects];
    let mut engine: Engine<Msg> = Engine::new(net);
    let mut decided = 0usize;
    let target = active.len() * n;
    let max_rounds = active.len() as u64 + 4 * (u64::from(net.height()) + 1) + 4;

    let mut round = 0u64;
    while decided < target {
        assert!(round < max_rounds, "distributed nibble exceeded its round bound");
        let inject: Option<usize> = (round < active.len() as u64).then_some(round as usize);
        engine.step(net, |v, inbox, out| {
            // Deliver incoming messages into local state.
            for &(from, msg) in inbox {
                match msg {
                    Msg::UpSum { x, h, w } => {
                        let st = &mut state[v.index()][x as usize];
                        st.sum_h += h;
                        st.sum_w += w;
                        st.child_reports += 1;
                        st.child_sums.push((from, h, w));
                    }
                    Msg::DownComp { x, h, w } => {
                        state[v.index()][x as usize].comp = Some((h, w));
                    }
                    Msg::UpMin { x, candidate } => {
                        let st = &mut state[v.index()][x as usize];
                        st.min_reports += 1;
                        if let Some(c) = candidate {
                            if st.min_candidate.is_none_or(|m| c < m) {
                                st.min_candidate = Some(c);
                                st.min_from_child = Some(from);
                            }
                        }
                    }
                    Msg::DownG { x, g } => {
                        if !state[v.index()][x as usize].decided {
                            decide_and_forward(net, matrix, &active, &mut state, v, x, g, out);
                            decided += 1;
                            gravity[active[x as usize].index()] = Some(g);
                        }
                    }
                }
            }
            // Stage progression for every active object this node knows of.
            for xi in 0..active.len() {
                // Leaves inject their weight exactly at the scheduled round.
                let injected_now = inject == Some(xi);
                let st = &mut state[v.index()][xi];
                if st.decided {
                    continue;
                }
                let x_obj = active[xi];
                let is_started = injected_now || st.child_reports > 0 || st.comp.is_some();
                if !is_started && net.is_processor(v) {
                    continue;
                }
                // Stage 1 → 2 boundary: all children reported.
                let children = net.children(v).len();
                let can_up_sum = !st.sent_up_sum
                    && st.child_reports == children
                    && (children > 0 || injected_now);
                if can_up_sum {
                    st.sent_up_sum = true;
                    let own = matrix.total(v, x_obj);
                    let own_w = matrix.writes(v, x_obj);
                    st.sum_h += own;
                    st.sum_w += own_w;
                    if v == net.root() {
                        st.comp = Some((0, 0));
                    } else {
                        out.send(
                            net.parent(v),
                            Msg::UpSum { x: xi as u32, h: st.sum_h, w: st.sum_w },
                        );
                    }
                }
                // Stage 2: forward complements to the children, once.
                if let Some((ch, cw)) = st.comp {
                    if st.sent_up_sum && !st.sent_comp && children > 0 {
                        st.sent_comp = true;
                        let total_h = st.sum_h + ch;
                        let total_w = st.sum_w + cw;
                        let sums = std::mem::take(&mut st.child_sums);
                        for &(c, c_h, c_w) in &sums {
                            out.send(
                                c,
                                Msg::DownComp { x: xi as u32, h: total_h - c_h, w: total_w - c_w },
                            );
                        }
                        st.child_sums = sums;
                    }
                }
                // Stage 3: up-min once complement known and children's mins in.
                if st.comp.is_some() && !st.sent_up_min && st.min_reports == children {
                    st.sent_up_min = true;
                    let candidate = candidacy(net, matrix, st, v).then_some(v);
                    let best = match (candidate, st.min_candidate) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if let Some(c) = candidate {
                        if st.min_candidate.is_none_or(|m| c < m) {
                            st.min_from_child = None; // the candidate is v itself
                            st.min_candidate = Some(c);
                        }
                    }
                    if v == net.root() {
                        let g = best.expect("gravity candidates always exist");
                        decide_and_forward(net, matrix, &active, &mut state, v, xi as u32, g, out);
                        decided += 1;
                        gravity[active[xi].index()] = Some(g);
                    } else {
                        out.send(net.parent(v), Msg::UpMin { x: xi as u32, candidate: best });
                    }
                }
            }
        });
        round += 1;
    }

    let mut copies = vec![Vec::new(); n_objects];
    for v in net.nodes() {
        for (xi, st) in state[v.index()].iter().enumerate() {
            if st.has_copy {
                copies[active[xi].index()].push(v);
            }
        }
    }
    for c in &mut copies {
        c.sort_unstable();
    }
    DistributedNibble { copies, gravity, stats: engine.stats() }
}

/// Local gravity-center test: every component around `v` carries at most
/// half the total weight.
fn candidacy(net: &Network, matrix: &AccessMatrix, st: &PerObject, v: NodeId) -> bool {
    let (ch, _) = st.comp.expect("checked by caller");
    let total = st.sum_h + ch;
    let mut max_comp = ch;
    for &(_, c_h, _) in &st.child_sums {
        max_comp = max_comp.max(c_h);
    }
    let _ = (net, matrix, v);
    2 * max_comp <= total
}

/// On learning `g`: decide the copy rule locally and forward the
/// announcement towards the leaves.
#[allow(clippy::too_many_arguments)]
fn decide_and_forward(
    net: &Network,
    matrix: &AccessMatrix,
    active: &[ObjectId],
    state: &mut [Vec<PerObject>],
    v: NodeId,
    x: u32,
    g: NodeId,
    out: &mut crate::engine::Outbox<'_, Msg>,
) {
    let st = &mut state[v.index()][x as usize];
    st.decided = true;
    let (ch, cw) = st.comp.expect("announcement follows complement");
    let total_h = st.sum_h + ch;
    let kappa = st.sum_w + cw;
    let h_g = if v == g {
        None
    } else if st.min_candidate == Some(g) {
        // g lies in this subtree...
        match st.min_from_child {
            Some(child) => {
                // ...below `child`: the g-rooted component of v excludes
                // that child's subtree.
                let c_h = st
                    .child_sums
                    .iter()
                    .find(|&&(c, _, _)| c == child)
                    .map(|&(_, h, _)| h)
                    .expect("child reported");
                Some(total_h - c_h)
            }
            None => None, // v itself is g (handled above) — unreachable
        }
    } else {
        // g is on the parent side: v's component is its own subtree.
        Some(st.sum_h)
    };
    st.has_copy = match h_g {
        None => true, // v == g
        Some(h) => h > kappa,
    };
    let _ = (matrix, active);
    for &c in net.children(v) {
        out.send(c, Msg::DownG { x, g });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_core::{nibble_object, Workspace};
    use hbn_topology::generators::{balanced, random_network, star, BandwidthProfile};
    use hbn_workload::generators as wgen;
    use hbn_workload::ObjectId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sequential_copies(net: &Network, m: &AccessMatrix) -> Vec<Vec<NodeId>> {
        let mut ws = Workspace::new(net.n_nodes());
        m.objects().map(|x| nibble_object(net, m, x, &mut ws).copies.nodes()).collect()
    }

    #[test]
    fn matches_sequential_nibble_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(100);
        for round in 0..20 {
            let net = random_network(6, 12, BandwidthProfile::Uniform, &mut rng);
            let m = wgen::uniform(&net, 5, 5, 4, 0.6, &mut rng);
            let dist = distributed_nibble(&net, &m);
            let seq = sequential_copies(&net, &m);
            assert_eq!(dist.copies, seq, "round {round}");
        }
    }

    #[test]
    fn gravity_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(101);
        let net = balanced(3, 2, BandwidthProfile::Uniform);
        let m = wgen::uniform(&net, 4, 5, 3, 0.8, &mut rng);
        let dist = distributed_nibble(&net, &m);
        let mut ws = Workspace::new(net.n_nodes());
        for x in m.objects() {
            if m.total_weight(x) == 0 {
                continue;
            }
            let seq = nibble_object(&net, &m, x, &mut ws);
            assert_eq!(dist.gravity[x.index()], Some(seq.gravity));
        }
    }

    #[test]
    fn round_complexity_is_objects_plus_height() {
        let mut rng = StdRng::seed_from_u64(102);
        let net = balanced(2, 5, BandwidthProfile::Uniform); // height 5
        for n_objects in [1usize, 8, 32] {
            let m = wgen::uniform(&net, n_objects, 3, 2, 0.5, &mut rng);
            let active = m.objects().filter(|&x| m.total_weight(x) > 0).count() as u64;
            let dist = distributed_nibble(&net, &m);
            let bound = active + 4 * (u64::from(net.height()) + 1) + 4;
            assert!(
                dist.stats.rounds <= bound,
                "{} rounds exceeds pipelined bound {bound}",
                dist.stats.rounds
            );
        }
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let net = star(3, 2);
        let m = AccessMatrix::new(3);
        let dist = distributed_nibble(&net, &m);
        assert_eq!(dist.stats.rounds, 0);
        assert!(dist.copies.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_heavy_writer_places_one_copy() {
        let net = star(4, 8);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[2], ObjectId(0), 0, 9);
        let dist = distributed_nibble(&net, &m);
        assert_eq!(dist.copies[0], vec![p[2]]);
        assert_eq!(dist.gravity[0], Some(p[2]));
    }
}
