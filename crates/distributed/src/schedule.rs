//! Round-accurate schedule of the full distributed extended-nibble run.
//!
//! The nibble phase is simulated as a real protocol in
//! [`crate::nibble_dist`]. The deletion and mapping phases operate on
//! *copies* rather than aggregates, so their distributed executions are
//! level-synchronised sweeps: deletion walks the copy subgraph `T(x)`
//! bottom-up (one level per round, pipelined over objects), the mapping
//! algorithm's upwards and downwards phases each take `height(T)` rounds,
//! and within a round a node pays `O(log degree)` per copy it moves (the
//! heap operation of Figure 6). This module derives those counts from a
//! sequential run, which the engine-level tests have already shown to be
//! behaviour-identical — the schedule is about *time*, not placement.

use hbn_core::{ExtendedNibble, ExtendedOutcome};
use hbn_topology::Network;
use hbn_workload::AccessMatrix;

/// Round/work accounting of a distributed extended-nibble execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistributedCost {
    /// Rounds of the (pipelined, message-passing) nibble phase.
    pub nibble_rounds: u64,
    /// Messages of the nibble phase.
    pub nibble_messages: u64,
    /// Rounds of the pipelined deletion sweeps.
    pub deletion_rounds: u64,
    /// Rounds of the mapping phase (upwards + downwards sweeps).
    pub mapping_rounds: u64,
    /// Total per-node work of the mapping phase in heap-operation units:
    /// `Σ_copies (moves · log₂ degree)` — the `|X| · |V| · log(degree)`
    /// term of Theorem 4.3.
    pub mapping_work: u64,
    /// The busiest single node's total mapping work (the distributed bound
    /// charges time to the busiest node).
    pub max_node_mapping_work: u64,
}

impl DistributedCost {
    /// Total rounds across all phases.
    pub fn total_rounds(&self) -> u64 {
        self.nibble_rounds + self.deletion_rounds + self.mapping_rounds
    }
}

/// Run the full strategy and derive the distributed schedule.
///
/// Returns the sequential outcome (placements are identical by
/// construction) together with the cost accounting.
pub fn distributed_schedule(
    net: &Network,
    matrix: &AccessMatrix,
) -> (ExtendedOutcome, DistributedCost) {
    let nib = crate::nibble_dist::distributed_nibble(net, matrix);
    let outcome = ExtendedNibble::new().place(net, matrix).expect("valid input");

    // Deletion: each processed object's copy subgraph is swept bottom-up,
    // one level per round; sweeps pipeline across objects, so the total is
    // (max depth of any copy subgraph) + (number of processed objects).
    let mut max_tx_depth = 0u64;
    let mut processed = 0u64;
    for x in matrix.objects() {
        let copies = outcome.nibble_placement.copies(x);
        if copies.iter().all(|&v| net.is_processor(v)) {
            continue;
        }
        processed += 1;
        let g = outcome.gravity[x.index()];
        let depth = copies.iter().map(|&c| u64::from(net.distance(c, g))).max().unwrap_or(0);
        max_tx_depth = max_tx_depth.max(depth);
    }
    let deletion_rounds = if processed == 0 { 0 } else { max_tx_depth + processed };

    // Mapping: the upwards phase is one round per level, the downwards
    // phase likewise (a copy crosses one switch per round); per-move work
    // is one heap operation of cost log₂(degree).
    let mapping_rounds =
        if outcome.mapping.mapped_copies == 0 { 0 } else { 2 * u64::from(net.height()) };
    let log_deg = u64::from(net.max_degree().max(2).ilog2());
    let moves = outcome.mapping.moves_up + outcome.mapping.moves_down;
    let mapping_work = moves * log_deg;
    // Busiest node: bound by the edge with the most downward arrivals.
    let max_edge_moves = net
        .edges()
        .map(|e| {
            // Each move along an edge costs one heap op at its upper node.
            let i = e.index();
            outcome.mapping.down_map[i].min(moves) // loads are weighted; cap by count
        })
        .max()
        .unwrap_or(0);
    let max_node_mapping_work = max_edge_moves.min(moves) * log_deg;

    let cost = DistributedCost {
        nibble_rounds: nib.stats.rounds,
        nibble_messages: nib.stats.messages,
        deletion_rounds,
        mapping_rounds,
        mapping_work,
        max_node_mapping_work,
    };
    (outcome, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, bus_path, BandwidthProfile};
    use hbn_workload::generators as wgen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_matches_theorem_shape() {
        let mut rng = StdRng::seed_from_u64(110);
        let net = balanced(3, 3, BandwidthProfile::Uniform);
        let m = wgen::uniform(&net, 10, 4, 4, 0.5, &mut rng);
        let (outcome, cost) = distributed_schedule(&net, &m);
        let x_active = m.objects().filter(|&x| m.total_weight(x) > 0).count() as u64;
        let height = u64::from(net.height());
        // Theorem 4.3's additive height term plus the pipelined object
        // terms; generous constant.
        let bound = 6 * (x_active + height + 2) + outcome.mapping.moves_down;
        assert!(
            cost.total_rounds() <= bound,
            "{} rounds exceed shape bound {bound}",
            cost.total_rounds()
        );
        assert!(cost.nibble_rounds >= height, "sweeps cannot beat the tree height");
    }

    #[test]
    fn no_mapping_means_no_mapping_rounds() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let mut m = AccessMatrix::new(1);
        // One dominant leaf: single leaf copy, nothing to delete or map.
        m.add(net.processors()[0], hbn_workload::ObjectId(0), 10, 2);
        let (_, cost) = distributed_schedule(&net, &m);
        assert_eq!(cost.mapping_rounds, 0);
        assert_eq!(cost.deletion_rounds, 0);
        assert_eq!(cost.mapping_work, 0);
    }

    #[test]
    fn deep_networks_pay_height_in_rounds() {
        let shallow = balanced(4, 2, BandwidthProfile::Uniform); // 16 procs, height 2
        let deep = bus_path(14, BandwidthProfile::Uniform); // 2 procs, height ~8
        let m_s = wgen::shared_write(&shallow, 4, 1, 2);
        let m_d = wgen::shared_write(&deep, 4, 1, 2);
        let (_, c_s) = distributed_schedule(&shallow, &m_s);
        let (_, c_d) = distributed_schedule(&deep, &m_d);
        assert!(
            c_d.nibble_rounds > c_s.nibble_rounds,
            "deep {} vs shallow {}",
            c_d.nibble_rounds,
            c_s.nibble_rounds
        );
    }
}
