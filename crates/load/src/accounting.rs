//! Exact load accounting for placements (paper, Section 1.1).
//!
//! * A **read** from `P` to `x` loads every edge on the path
//!   `P → c(P, x)` by one.
//! * A **write** loads the same path *and* every edge of the Steiner tree
//!   spanning the copy set `P_x` by one (the update broadcast).
//! * A **bus** carries half the sum of the loads of its incident switches.
//!
//! Two interchangeable implementations are provided and cross-checked in
//! tests: a sparse one that walks explicit paths (good for small supports)
//! and a dense subtree-sum one in `O(|V|)` per object (good for wide
//! supports); [`LoadMap::from_placement`] picks per object.

use crate::placement::{Bottleneck, CongestionReport, Placement};
use crate::ratio::LoadRatio;
use hbn_topology::{steiner, CapacityOverlay, EdgeId, Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};

/// Per-edge loads of a placement (undirected; indexed by `EdgeId`, i.e. by
/// child node id, with the root slot unused). Bus loads are derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadMap {
    edge: Vec<u64>,
}

impl LoadMap {
    /// An all-zero load map for `net`.
    pub fn zero(net: &Network) -> Self {
        LoadMap { edge: vec![0; net.n_nodes()] }
    }

    /// Load of switch `e`.
    #[inline]
    pub fn edge_load(&self, e: EdgeId) -> u64 {
        self.edge[e.index()]
    }

    /// Mutable access for algorithm-internal accounting.
    #[inline]
    pub fn edge_load_mut(&mut self, e: EdgeId) -> &mut u64 {
        &mut self.edge[e.index()]
    }

    /// Add `w` to the load of switch `e`.
    #[inline]
    pub fn add_edge(&mut self, e: EdgeId, w: u64) {
        self.edge[e.index()] += w;
    }

    /// Twice the load of bus `v` (kept doubled to stay integral): the sum
    /// of the loads of all switches incident to `v`.
    pub fn bus_load_x2(&self, net: &Network, v: NodeId) -> u64 {
        debug_assert!(net.is_bus(v), "{v} is not a bus");
        let mut sum = 0u64;
        if v != net.root() {
            sum += self.edge[v.index()];
        }
        for &c in net.children(v) {
            sum += self.edge[c.index()];
        }
        sum
    }

    /// Sum of all edge loads (twice the "total communication load" of the
    /// paper's introduction when all paths count once per traversal).
    pub fn total(&self) -> u64 {
        self.edge.iter().sum()
    }

    /// The raw per-edge loads, indexed by [`EdgeId::index`] (one slot per
    /// node; the root's slot is always zero). Used by the durable
    /// checkpoint codec, which serializes load maps edge by edge.
    pub fn as_slice(&self) -> &[u64] {
        &self.edge
    }

    /// Zero every edge load in place, keeping the allocation. Used by the
    /// scenario engine's epoch-delta accumulators, which reuse one map per
    /// run instead of cloning the strategy's cumulative loads every epoch.
    pub fn reset(&mut self) {
        self.edge.fill(0);
    }

    /// Pointwise sum with another load map.
    pub fn add_assign(&mut self, other: &LoadMap) {
        assert_eq!(self.edge.len(), other.edge.len());
        for (a, b) in self.edge.iter_mut().zip(&other.edge) {
            *a += *b;
        }
    }

    /// Pointwise difference; panics (in debug) on underflow. Used by the
    /// exact branch-and-bound solvers to undo a branch.
    pub fn sub_assign(&mut self, other: &LoadMap) {
        assert_eq!(self.edge.len(), other.edge.len());
        for (a, b) in self.edge.iter_mut().zip(&other.edge) {
            debug_assert!(*a >= *b, "load underflow");
            *a -= *b;
        }
    }

    /// True when `self ≤ other` on every edge (the dominance order in
    /// which the nibble placement is optimal, Theorem 3.1).
    pub fn dominated_by(&self, other: &LoadMap) -> bool {
        assert_eq!(self.edge.len(), other.edge.len());
        self.edge.iter().zip(&other.edge).all(|(a, b)| a <= b)
    }

    /// Exact congestion: the maximum relative load over all switches and
    /// buses, with the bottleneck resource.
    pub fn congestion(&self, net: &Network) -> CongestionReport {
        let mut best =
            CongestionReport { congestion: LoadRatio::ZERO, bottleneck: Bottleneck::None };
        for e in net.edges() {
            let r = LoadRatio::new(self.edge_load(e), net.edge_bandwidth(e));
            if r > best.congestion {
                best = CongestionReport { congestion: r, bottleneck: Bottleneck::Edge(e) };
            }
        }
        for v in net.nodes().filter(|&v| net.is_bus(v)) {
            // bus load = (Σ incident)/2, bandwidth b(v): compare Σ/(2b).
            let r = LoadRatio::new(self.bus_load_x2(net, v), 2 * net.node_bandwidth(v));
            if r > best.congestion {
                best = CongestionReport { congestion: r, bottleneck: Bottleneck::Bus(v) };
            }
        }
        best
    }

    /// [`LoadMap::congestion`] under a per-bus capacity overlay: bus
    /// ratios are normalized by the *effective* (possibly degraded)
    /// bandwidth. A pristine overlay yields bit-identical results to
    /// [`LoadMap::congestion`] — same iteration order, same strict-`>`
    /// replacement. A *down* bus is normalized by its degraded
    /// bandwidth too (outages are a bounded per-replay window, not a
    /// whole-epoch zero-capacity denominator).
    pub fn congestion_with(&self, net: &Network, overlay: &CapacityOverlay) -> CongestionReport {
        let mut best =
            CongestionReport { congestion: LoadRatio::ZERO, bottleneck: Bottleneck::None };
        for e in net.edges() {
            let r = LoadRatio::new(self.edge_load(e), net.edge_bandwidth(e));
            if r > best.congestion {
                best = CongestionReport { congestion: r, bottleneck: Bottleneck::Edge(e) };
            }
        }
        for v in net.nodes().filter(|&v| net.is_bus(v)) {
            // bus load = (Σ incident)/2, bandwidth b(v): compare Σ/(2b).
            let r = LoadRatio::new(
                self.bus_load_x2(net, v),
                2 * overlay.effective_node_bandwidth(net, v),
            );
            if r > best.congestion {
                best = CongestionReport { congestion: r, bottleneck: Bottleneck::Bus(v) };
            }
        }
        best
    }

    /// Loads of a full placement over all objects. Picks the sparse or
    /// dense per-object accounting based on the support size; one Steiner
    /// scratch is shared across all objects' broadcast computations.
    pub fn from_placement(net: &Network, matrix: &AccessMatrix, placement: &Placement) -> LoadMap {
        let mut out = LoadMap::zero(net);
        let mut scratch = steiner::SteinerScratch::new();
        for x in matrix.objects() {
            let support = placement.assignment(x).len() + placement.copies(x).len();
            // Dense accounting costs O(|V|); sparse costs roughly
            // O(support · height).
            if support * (net.height() as usize + 1) < net.n_nodes() {
                sparse_loads_with(net, matrix, placement, x, &mut scratch, &mut out);
            } else {
                add_object_loads_dense(net, matrix, placement, x, &mut out);
            }
        }
        out
    }

    /// Loads of a single object (sparse accounting).
    pub fn from_object(
        net: &Network,
        matrix: &AccessMatrix,
        placement: &Placement,
        x: ObjectId,
    ) -> LoadMap {
        let mut out = LoadMap::zero(net);
        add_object_loads_sparse(net, matrix, placement, x, &mut out);
        out
    }
}

/// Sparse accounting: explicit path walks plus a virtual-tree Steiner
/// computation. `O(k·height + k log k)` for support size `k`.
pub fn add_object_loads_sparse(
    net: &Network,
    matrix: &AccessMatrix,
    placement: &Placement,
    x: ObjectId,
    out: &mut LoadMap,
) {
    let mut scratch = steiner::SteinerScratch::new();
    sparse_loads_with(net, matrix, placement, x, &mut scratch, out);
}

/// [`add_object_loads_sparse`] with a caller-provided Steiner scratch, so
/// bulk accounting ([`LoadMap::from_placement`]) reuses one scratch
/// across all objects.
fn sparse_loads_with(
    net: &Network,
    matrix: &AccessMatrix,
    placement: &Placement,
    x: ObjectId,
    scratch: &mut steiner::SteinerScratch,
    out: &mut LoadMap,
) {
    for e in placement.assignment(x) {
        let weight = e.reads + e.writes;
        if weight == 0 {
            continue;
        }
        for edge in net.path_edges_iter(e.processor, e.server) {
            out.edge[edge.index()] += weight;
        }
    }
    let kappa = matrix.write_contention(x);
    if kappa > 0 {
        for &edge in steiner::steiner_edges_with(net, placement.copies(x), scratch) {
            out.edge[edge.index()] += kappa;
        }
    }
}

/// Dense accounting in `O(|V| + k·log|V|)`: path loads via the LCA
/// difference trick and Steiner edges via subtree terminal counts.
pub fn add_object_loads_dense(
    net: &Network,
    matrix: &AccessMatrix,
    placement: &Placement,
    x: ObjectId,
    out: &mut LoadMap,
) {
    let n = net.n_nodes();
    let mut diff = vec![0i64; n];
    for e in placement.assignment(x) {
        let weight = (e.reads + e.writes) as i64;
        if weight == 0 {
            continue;
        }
        let l = net.lca(e.processor, e.server);
        diff[e.processor.index()] += weight;
        diff[e.server.index()] += weight;
        diff[l.index()] -= 2 * weight;
    }
    // Subtree-sum the differences in postorder; afterwards acc[v] is the
    // path load crossing the edge (v, parent(v)).
    let mut acc = diff;
    for v in net.postorder() {
        if v != net.root() {
            let val = acc[v.index()];
            let p = net.parent(v);
            acc[p.index()] += val;
        }
    }
    for e in net.edges() {
        let v = e.child();
        let val = acc[v.index()];
        debug_assert!(val >= 0, "path difference sums must be non-negative");
        out.edge[e.index()] += val as u64;
    }
    // Steiner edges via terminal counts.
    let kappa = matrix.write_contention(x);
    let copies = placement.copies(x);
    if kappa > 0 && copies.len() >= 2 {
        let mut cnt = vec![0u32; n];
        for &c in copies {
            cnt[c.index()] += 1;
        }
        for v in net.postorder() {
            if v != net.root() {
                let val = cnt[v.index()];
                let p = net.parent(v);
                cnt[p.index()] += val;
            }
        }
        let total = copies.len() as u32;
        for e in net.edges() {
            let below = cnt[e.child().index()];
            if below > 0 && below < total {
                out.edge[e.index()] += kappa;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::AssignmentEntry;
    use hbn_topology::generators::{balanced, star, BandwidthProfile};
    use hbn_topology::NetworkBuilder;

    /// Star with 4 processors (ids 1..=4) around bus 0.
    fn star4() -> Network {
        star(4, 100)
    }

    #[test]
    fn read_path_loads() {
        let net = star4();
        let mut m = AccessMatrix::new(1);
        let x = ObjectId(0);
        let p = net.processors();
        m.add(p[0], x, 5, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[1]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        // Path p0 -> bus -> p1: both leaf edges carry 5.
        assert_eq!(loads.edge_load(EdgeId::from(p[0])), 5);
        assert_eq!(loads.edge_load(EdgeId::from(p[1])), 5);
        assert_eq!(loads.edge_load(EdgeId::from(p[2])), 0);
        // Bus carries (5+5)/2 = 5.
        assert_eq!(loads.bus_load_x2(&net, net.root()), 10);
    }

    #[test]
    fn local_read_is_free() {
        let net = star4();
        let mut m = AccessMatrix::new(1);
        let p = net.processors();
        m.add(p[0], ObjectId(0), 7, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[0]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        assert_eq!(loads.total(), 0);
    }

    #[test]
    fn write_broadcast_loads_steiner_tree() {
        let net = star4();
        let x = ObjectId(0);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], x, 0, 3);
        // Copies on p1 and p2; p0 writes via p1.
        let mut pl = Placement::new(1);
        pl.add_copy(x, p[1]);
        pl.add_copy(x, p[2]);
        pl.set_assignment(
            x,
            vec![AssignmentEntry { processor: p[0], server: p[1], reads: 0, writes: 3 }],
        );
        pl.validate(&net, &m).unwrap();
        let loads = LoadMap::from_placement(&net, &m, &pl);
        // Path p0→p1 carries 3 on e(p0) and e(p1); broadcast over the
        // Steiner tree {e(p1), e(p2)} carries κ = 3 more.
        assert_eq!(loads.edge_load(EdgeId::from(p[0])), 3);
        assert_eq!(loads.edge_load(EdgeId::from(p[1])), 6);
        assert_eq!(loads.edge_load(EdgeId::from(p[2])), 3);
        assert_eq!(loads.edge_load(EdgeId::from(p[3])), 0);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let net = balanced(3, 3, BandwidthProfile::Uniform);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        use rand::{Rng, SeedableRng};
        for _ in 0..20 {
            let mut m = AccessMatrix::new(1);
            let x = ObjectId(0);
            let procs = net.processors();
            for &p in procs {
                if rng.gen_bool(0.6) {
                    m.add(p, x, rng.gen_range(0..5), rng.gen_range(0..5));
                }
            }
            let k = rng.gen_range(1..=4);
            let mut pl = Placement::new(1);
            for _ in 0..k {
                pl.add_copy(x, procs[rng.gen_range(0..procs.len())]);
            }
            pl.nearest_assignment(&net, &m);
            let mut a = LoadMap::zero(&net);
            add_object_loads_sparse(&net, &m, &pl, x, &mut a);
            let mut b = LoadMap::zero(&net);
            add_object_loads_dense(&net, &m, &pl, x, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn congestion_respects_bandwidths() {
        // p1 - b1 =2= b2 - p2, with a heavy flow p1 -> p2.
        let mut b = NetworkBuilder::new();
        let p1 = b.add_processor();
        let b1 = b.add_bus(10);
        let b2 = b.add_bus(10);
        let p2 = b.add_processor();
        b.connect(p1, b1, 1).unwrap();
        b.connect(b1, b2, 2).unwrap();
        b.connect(b2, p2, 1).unwrap();
        let net = b.build().unwrap();
        let mut m = AccessMatrix::new(1);
        m.add(p1, ObjectId(0), 8, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p2);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let rep = loads.congestion(&net);
        // Leaf edges carry 8/1; the middle edge 8/2; buses (8+8)/2/10.
        assert_eq!(rep.congestion, LoadRatio::new(8, 1));
        assert!(matches!(rep.bottleneck, Bottleneck::Edge(_)));
    }

    #[test]
    fn congestion_can_bottleneck_on_bus() {
        // Slow bus: many flows cross it.
        let net = star(4, 1);
        let x = ObjectId(0);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], x, 2, 0);
        m.add(p[1], x, 2, 0);
        m.add(p[2], x, 2, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[3]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let rep = loads.congestion(&net);
        // Bus: (2+2+2+6)/2 = 6 over bandwidth 1; edge max is 6/1 too —
        // ties keep the edge (checked first); raise bus load to exceed.
        assert_eq!(rep.congestion, LoadRatio::new(6, 1));
        // Now drop bus bandwidth relevance: check explicit bus value.
        assert_eq!(loads.bus_load_x2(&net, net.root()), 12);
    }

    #[test]
    fn congestion_with_pristine_overlay_is_identity() {
        let net = star(4, 2);
        let x = ObjectId(0);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], x, 5, 0);
        m.add(p[1], x, 5, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[3]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let overlay = CapacityOverlay::pristine(net.n_nodes());
        assert_eq!(loads.congestion_with(&net, &overlay), loads.congestion(&net));
    }

    #[test]
    fn congestion_with_degraded_bus_raises_bus_ratio() {
        let net = star(4, 8);
        let x = ObjectId(0);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], x, 4, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[3]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        // Pristine: bus carries (4+4)/2 = 4 over b = 8 → 1/2; edges 4/1.
        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        assert_eq!(loads.congestion_with(&net, &overlay), loads.congestion(&net));
        // Degrade the bus to b = 1: bus ratio becomes 4/1 but edges tie
        // first; degrade to effective 1 with higher load to dominate.
        overlay.degrade(net.root(), 8);
        let rep = loads.congestion_with(&net, &overlay);
        assert_eq!(rep.congestion, LoadRatio::new(4, 1));
        let pristine = loads.congestion(&net);
        assert!(rep.congestion >= pristine.congestion);
        // 16x degradation pushes the bus past the edges: 8/(2·1) vs 4/1
        // ties again — check the ratio value is normalized by the
        // effective bandwidth, not the pristine one.
        assert_eq!(loads.bus_load_x2(&net, net.root()), 8);
        assert_eq!(overlay.effective_node_bandwidth(&net, net.root()), 1);
    }

    #[test]
    fn empty_workload_has_zero_congestion() {
        let net = star4();
        let m = AccessMatrix::new(2);
        let pl = Placement::new(2);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let rep = loads.congestion(&net);
        assert_eq!(rep.congestion, LoadRatio::ZERO);
        assert_eq!(rep.bottleneck, Bottleneck::None);
    }

    #[test]
    fn dominance_and_sum() {
        let net = star4();
        let mut a = LoadMap::zero(&net);
        let mut b = LoadMap::zero(&net);
        *a.edge_load_mut(EdgeId(1)) = 3;
        *b.edge_load_mut(EdgeId(1)) = 5;
        *b.edge_load_mut(EdgeId(2)) = 1;
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        a.add_assign(&b);
        assert_eq!(a.edge_load(EdgeId(1)), 8);
        assert_eq!(a.total(), 9);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a, LoadMap::zero(&net));
    }
}
