//! Makespan bounds from a [`LoadMap`] in `O(|V|)` — the congestion-bound
//! estimator behind `ReplayKernel::Estimate` in the scenario engine.
//!
//! The replayed traffic reproduces the load model exactly (every request
//! path edge is crossed once, every update broadcast crosses its Steiner
//! tree once), so both bounds are statements about the *actual* per-pool
//! crossing totals of the exact replay:
//!
//! * **Lower bound.** Every token pool `q` with crossing total `L_q` and
//!   per-slot capacity `cap_q` needs at least `⌈L_q / cap_q⌉` slots, and
//!   the last delivery cannot precede those slots: `makespan ≥
//!   max_q ⌈L_q / cap_q⌉` — the classical congestion bound the paper's
//!   strategies optimize. A *down* bus additionally moves all of its
//!   crossings past the outage window (`+ outage_slots`). Independently,
//!   injection is rate-limited: a processor with `n_p` queued requests
//!   injects its last one at slot `⌈n_p / rate⌉ − 1`, and no request
//!   completes before its injection slot, so the largest last-injection
//!   slot is also a lower bound (this is what makes all-local traffic,
//!   whose congestion is zero, bound correctly).
//!
//! * **Upper bound** (delay attribution). A packet blocked in some slot
//!   saw one of its next-switch pools empty, i.e. `cap_q` of that pool's
//!   `L_q` lifetime crossings were consumed that very slot — each pool
//!   can *saturate* in at most `⌊L_q / cap_q⌋` distinct slots. Every pool
//!   a packet can ever wait on lies on the root paths of its two
//!   endpoint leaves, so its total delay is at most `2·maxS`, where
//!   `S(leaf)` sums `⌊L_q / cap_q⌋` over the leaf's root path and `maxS`
//!   is the per-leaf maximum. With dilation `D = 2·height` and last
//!   injection slot `I`: a request completes by `I + D + 2·maxS`; when
//!   writes exist, its update broadcast spawns then and completes another
//!   `D + 2·maxS` later. Down buses grant no tokens during the outage
//!   window, where blocking is not attributable to load — all such slots
//!   lie inside the window, adding at most `outage_slots` once.
//!
//! Both bounds are exact-replay-safe (`lower ≤ makespan ≤ upper`, pinned
//! by the bracket suite in `hbn-scenario`), and the upper bound is
//! deliberately conservative: its observed gap is recorded per epoch and
//! regression-tested, not assumed.

use crate::accounting::LoadMap;
use hbn_topology::{CapacityOverlay, EdgeId, Network};

/// Inclusive lower/upper bounds on the exact replay's makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MakespanBounds {
    /// No schedule of this traffic finishes earlier.
    pub lower: u64,
    /// The slot kernel's arbitration finishes no later.
    pub upper: u64,
}

impl MakespanBounds {
    /// Upper-to-lower gap ratio (`1.0` = tight); `1.0` when the lower
    /// bound is zero (then the upper bound is zero too).
    pub fn gap_ratio(&self) -> f64 {
        if self.lower == 0 {
            1.0
        } else {
            self.upper as f64 / self.lower as f64
        }
    }

    /// True when `lower ≤ makespan ≤ upper`.
    pub fn brackets(&self, makespan: u64) -> bool {
        self.lower <= makespan && makespan <= self.upper
    }
}

/// Injection-side facts the load map cannot see, extracted from the
/// epoch's access matrix by the caller (`hbn_sim::estimate`).
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectionProfile {
    /// Total queued requests across all processors.
    pub total_requests: u64,
    /// Slot of the last injection: `max_p ⌈n_p / rate⌉ − 1`.
    pub last_injection_slot: u64,
    /// Whether any write exists (writes spawn update broadcasts).
    pub has_writes: bool,
}

/// Compute makespan bounds for replaying `loads` on `net` in `O(|V|)`.
///
/// `overlay` carries per-bus degradation and outage windows exactly as
/// the slot kernels consume it; `None` is the pristine network. A
/// zero-request profile yields `{0, 0}`.
pub fn makespan_bounds(
    net: &Network,
    loads: &LoadMap,
    profile: InjectionProfile,
    overlay: Option<&CapacityOverlay>,
) -> MakespanBounds {
    if profile.total_requests == 0 {
        return MakespanBounds::default();
    }
    let outage_slots = overlay.map_or(0, |o| o.outage_slots());
    let mut any_down = false;

    // --- Lower bound: per-pool slot demand, plus the injection tail ---
    let mut lower = profile.last_injection_slot;
    for e in net.edges() {
        let bw = net.edge_bandwidth(e);
        let need = loads.edge_load(e).div_ceil(bw);
        lower = lower.max(need);
    }
    for v in net.nodes().filter(|&v| net.is_bus(v)) {
        let x2 = loads.bus_load_x2(net, v);
        let cap = 2 * overlay
            .map_or_else(|| net.node_bandwidth(v), |o| o.effective_node_bandwidth(net, v));
        let mut need = x2.div_ceil(cap);
        if let Some(o) = overlay {
            if o.is_down(v) {
                any_down = true;
                if x2 > 0 {
                    // No tokens during the outage: every crossing at this
                    // bus lands in a slot ≥ outage_slots.
                    need += outage_slots;
                }
            }
        }
        lower = lower.max(need);
    }

    // --- Upper bound: saturation-slot sums over root paths ---
    // S(v) = S(parent) + ⌊edge load / edge bw⌋ + bus term, computed in
    // one pass over the preorder (parents precede children).
    let n = net.n_nodes();
    let mut sat = vec![0u64; n];
    let mut max_s = 0u64;
    for &v in net.preorder() {
        let mut s = if v == net.root() { 0 } else { sat[net.parent(v).index()] };
        if v != net.root() {
            let e = EdgeId::from(v);
            s += loads.edge_load(e) / net.edge_bandwidth(e);
        }
        if net.is_bus(v) {
            let cap = 2 * overlay
                .map_or_else(|| net.node_bandwidth(v), |o| o.effective_node_bandwidth(net, v));
            s += loads.bus_load_x2(net, v) / cap;
        } else {
            max_s = max_s.max(s);
        }
        sat[v.index()] = s;
    }
    let dilation = 2 * net.height() as u64;
    let leg = dilation + 2 * max_s;
    let mut upper = profile
        .last_injection_slot
        .saturating_add(leg)
        .saturating_add(if profile.has_writes { leg } else { 0 });
    if any_down {
        upper = upper.saturating_add(outage_slots);
    }
    MakespanBounds { lower, upper: upper.max(lower) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use hbn_topology::generators::star;
    use hbn_workload::{AccessMatrix, ObjectId};

    #[test]
    fn zero_requests_zero_bounds() {
        let net = star(4, 2);
        let loads = LoadMap::zero(&net);
        let b = makespan_bounds(&net, &loads, InjectionProfile::default(), None);
        assert_eq!(b, MakespanBounds { lower: 0, upper: 0 });
        assert_eq!(b.gap_ratio(), 1.0);
        assert!(b.brackets(0));
    }

    #[test]
    fn single_remote_read_brackets_two_slots() {
        let net = star(4, 100);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], ObjectId(0), 1, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[1]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let profile =
            InjectionProfile { total_requests: 1, last_injection_slot: 0, has_writes: false };
        let b = makespan_bounds(&net, &loads, profile, None);
        // Exact makespan is 2 (two switch crossings, no contention).
        assert!(b.brackets(2), "bounds {b:?} must bracket 2");
    }

    #[test]
    fn all_local_traffic_bounds_by_injection_tail() {
        let net = star(4, 100);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], ObjectId(0), 7, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[0]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        assert_eq!(loads.total(), 0);
        // rate 1: the 7th request injects (and completes) at slot 6.
        let profile =
            InjectionProfile { total_requests: 7, last_injection_slot: 6, has_writes: false };
        let b = makespan_bounds(&net, &loads, profile, None);
        assert_eq!(b.lower, 6);
        assert!(b.brackets(6));
    }

    #[test]
    fn down_bus_pushes_both_bounds_past_outage() {
        let net = star(4, 1);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], ObjectId(0), 3, 0);
        let pl = Placement::single_leaf(&net, &m, |_| p[1]);
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let mut overlay = CapacityOverlay::pristine(net.n_nodes()).with_outage_slots(50);
        overlay.set_down(net.root());
        let profile =
            InjectionProfile { total_requests: 3, last_injection_slot: 2, has_writes: false };
        let b = makespan_bounds(&net, &loads, profile, Some(&overlay));
        assert!(b.lower > 50, "crossings cannot start before the outage ends: {b:?}");
        assert!(b.upper >= b.lower);
    }
}
