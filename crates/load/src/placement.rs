//! Placements: copy sets `P_x` and reference-copy assignments `c(P, x)`.
//!
//! The paper's model assigns every processor a single reference copy per
//! object. The deletion algorithm (Section 3.2) may split a heavy copy
//! into several chunks, which can split one processor's requests across
//! two copies; our [`Placement`] therefore stores *weighted* assignment
//! entries and exposes [`Placement::is_single_reference`] to check model
//! compliance, plus [`Placement::nearest_assignment`] to produce the
//! compliant nearest-copy assignment for any copy sets.

use crate::ratio::LoadRatio;
use hbn_topology::{Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};
use serde::{Deserialize, Serialize};

/// One weighted request group routed to a server: `reads + writes`
/// requests from `processor` are served by the copy on `server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentEntry {
    /// The requesting processor.
    pub processor: NodeId,
    /// The node holding the reference copy serving this group.
    pub server: NodeId,
    /// Read requests routed to `server`.
    pub reads: u64,
    /// Write requests routed to `server`.
    pub writes: u64,
}

/// A (possibly redundant) placement of all objects plus the routing of
/// every request group to a reference copy.
///
/// Intermediate placements (the nibble placement of step 1) may hold
/// copies on buses; [`Placement::is_leaf_only`] checks the hierarchical
/// bus constraint that final placements must satisfy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `copies[x]`: sorted, deduplicated nodes holding copies of `x`.
    copies: Vec<Vec<NodeId>>,
    /// `assignments[x]`: request groups of `x` routed to servers.
    assignments: Vec<Vec<AssignmentEntry>>,
}

/// Validation failures for placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// An object with requests has no copies.
    NoCopies(ObjectId),
    /// An assignment routes to a node that holds no copy.
    ServerWithoutCopy {
        /// The object.
        object: ObjectId,
        /// The offending server node.
        server: NodeId,
    },
    /// The assignment totals do not match the access matrix.
    CoverageMismatch {
        /// The object.
        object: ObjectId,
        /// The requesting processor whose totals differ.
        processor: NodeId,
    },
    /// A copy is placed on a node outside the network.
    UnknownNode(NodeId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCopies(x) => write!(f, "object {x} has requests but no copies"),
            PlacementError::ServerWithoutCopy { object, server } => {
                write!(f, "assignment of {object} routes to {server}, which holds no copy")
            }
            PlacementError::CoverageMismatch { object, processor } => {
                write!(f, "assignment of {object} does not cover the requests of {processor}")
            }
            PlacementError::UnknownNode(v) => write!(f, "placement names unknown node {v}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// An empty placement over `n_objects` objects.
    pub fn new(n_objects: usize) -> Self {
        Placement { copies: vec![Vec::new(); n_objects], assignments: vec![Vec::new(); n_objects] }
    }

    /// Number of objects.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.copies.len()
    }

    /// The copy set `P_x` (sorted, deduplicated).
    #[inline]
    pub fn copies(&self, x: ObjectId) -> &[NodeId] {
        &self.copies[x.index()]
    }

    /// The assignment entries of `x`.
    #[inline]
    pub fn assignment(&self, x: ObjectId) -> &[AssignmentEntry] {
        &self.assignments[x.index()]
    }

    /// Replace the copy set of `x` (sorts and deduplicates).
    pub fn set_copies(&mut self, x: ObjectId, mut nodes: Vec<NodeId>) {
        nodes.sort_unstable();
        nodes.dedup();
        self.copies[x.index()] = nodes;
    }

    /// Add a copy of `x` on `node`.
    pub fn add_copy(&mut self, x: ObjectId, node: NodeId) {
        let set = &mut self.copies[x.index()];
        if let Err(i) = set.binary_search(&node) {
            set.insert(i, node);
        }
    }

    /// Whether `node` holds a copy of `x`.
    pub fn has_copy(&self, x: ObjectId, node: NodeId) -> bool {
        self.copies[x.index()].binary_search(&node).is_ok()
    }

    /// Append an assignment entry for `x`.
    pub fn push_assignment(&mut self, x: ObjectId, entry: AssignmentEntry) {
        if entry.reads == 0 && entry.writes == 0 {
            return;
        }
        self.assignments[x.index()].push(entry);
    }

    /// Replace the whole assignment of `x`.
    pub fn set_assignment(&mut self, x: ObjectId, entries: Vec<AssignmentEntry>) {
        self.assignments[x.index()] =
            entries.into_iter().filter(|e| e.reads + e.writes > 0).collect();
    }

    /// True when every copy lies on a processor — the hierarchical bus
    /// constraint for final placements.
    pub fn is_leaf_only(&self, net: &Network) -> bool {
        self.copies.iter().flatten().all(|&v| net.is_processor(v))
    }

    /// True when every `(processor, object)` pair routes to exactly one
    /// server, i.e. the placement defines a function `c(P, x)` as in the
    /// paper's model.
    pub fn is_single_reference(&self) -> bool {
        self.assignments.iter().all(|entries| {
            let mut procs: Vec<NodeId> = entries.iter().map(|e| e.processor).collect();
            procs.sort_unstable();
            let before = procs.len();
            procs.dedup();
            procs.len() == before
        })
    }

    /// Total copies across all objects.
    pub fn total_copies(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Check structural consistency against the network and workload:
    /// every object with requests has ≥ 1 copy, every server holds a copy,
    /// and per `(processor, object)` the assignment totals equal the
    /// matrix entries.
    pub fn validate(&self, net: &Network, matrix: &AccessMatrix) -> Result<(), PlacementError> {
        assert_eq!(self.n_objects(), matrix.n_objects(), "object count mismatch");
        for x in matrix.objects() {
            for &c in self.copies(x) {
                if c.index() >= net.n_nodes() {
                    return Err(PlacementError::UnknownNode(c));
                }
            }
            if matrix.total_weight(x) > 0 && self.copies(x).is_empty() {
                return Err(PlacementError::NoCopies(x));
            }
            // Accumulate assignment totals per processor.
            let mut totals: std::collections::BTreeMap<NodeId, (u64, u64)> =
                std::collections::BTreeMap::new();
            for e in self.assignment(x) {
                if !self.has_copy(x, e.server) {
                    return Err(PlacementError::ServerWithoutCopy { object: x, server: e.server });
                }
                let t = totals.entry(e.processor).or_insert((0, 0));
                t.0 += e.reads;
                t.1 += e.writes;
            }
            for entry in matrix.object_entries(x) {
                let got = totals.remove(&entry.processor).unwrap_or((0, 0));
                if got != (entry.reads, entry.writes) {
                    return Err(PlacementError::CoverageMismatch {
                        object: x,
                        processor: entry.processor,
                    });
                }
            }
            if let Some((&processor, _)) = totals.iter().next() {
                // Assignment mentions a processor with no matrix entry.
                return Err(PlacementError::CoverageMismatch { object: x, processor });
            }
        }
        Ok(())
    }

    /// Build the model-compliant assignment that routes every request group
    /// to its *nearest* copy (deterministic tie-breaking), for the current
    /// copy sets. Requires every requested object to have ≥ 1 copy.
    pub fn nearest_assignment(&mut self, net: &Network, matrix: &AccessMatrix) {
        for x in matrix.objects() {
            self.nearest_assignment_for(net, matrix, x);
        }
    }

    /// [`Placement::nearest_assignment`] for a single object.
    pub fn nearest_assignment_for(&mut self, net: &Network, matrix: &AccessMatrix, x: ObjectId) {
        if matrix.object_entries(x).is_empty() {
            self.assignments[x.index()].clear();
            return;
        }
        let nearest = nearest_copy_map(net, self.copies(x));
        let entries = matrix
            .object_entries(x)
            .iter()
            .map(|e| AssignmentEntry {
                processor: e.processor,
                server: nearest[e.processor.index()],
                reads: e.reads,
                writes: e.writes,
            })
            .collect();
        self.set_assignment(x, entries);
    }

    /// Convenience: the non-redundant placement that puts each object on a
    /// single given leaf and routes everything there.
    pub fn single_leaf(
        net: &Network,
        matrix: &AccessMatrix,
        leaf_of: impl Fn(ObjectId) -> NodeId,
    ) -> Placement {
        let mut p = Placement::new(matrix.n_objects());
        for x in matrix.objects() {
            let leaf = leaf_of(x);
            debug_assert!(net.is_processor(leaf), "{leaf} is not a processor");
            p.add_copy(x, leaf);
            for e in matrix.object_entries(x) {
                p.push_assignment(
                    x,
                    AssignmentEntry {
                        processor: e.processor,
                        server: leaf,
                        reads: e.reads,
                        writes: e.writes,
                    },
                );
            }
        }
        p
    }
}

/// For every node of the network, the nearest member of `copies` (ties
/// broken deterministically towards earlier-seeded, i.e. smaller, copy
/// ids), via a multi-source BFS over the tree in `O(|V|)`.
///
/// # Panics
/// Panics if `copies` is empty.
pub fn nearest_copy_map(net: &Network, copies: &[NodeId]) -> Vec<NodeId> {
    assert!(!copies.is_empty(), "nearest_copy_map needs at least one copy");
    let n = net.n_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut nearest = vec![NodeId(u32::MAX); n];
    let mut queue = std::collections::VecDeque::new();
    // Seed in id order so ties resolve to the smallest copy id.
    for &c in copies {
        if dist[c.index()] == 0 && nearest[c.index()] != NodeId(u32::MAX) {
            continue; // duplicate seed
        }
        dist[c.index()] = 0;
        nearest[c.index()] = c;
        queue.push_back(c);
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        let parent = (v != net.root()).then(|| net.parent(v));
        for u in net.children(v).iter().copied().chain(parent) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                nearest[u.index()] = nearest[v.index()];
                queue.push_back(u);
            }
        }
    }
    nearest
}

/// Summary of a placement for reports: copy counts and redundancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Total number of copies.
    pub total_copies: usize,
    /// Objects with more than one copy.
    pub redundant_objects: usize,
    /// Largest copy set.
    pub max_copies: usize,
    /// Mean copies per object.
    pub mean_copies: f64,
}

/// Compute [`PlacementStats`].
pub fn placement_stats(p: &Placement) -> PlacementStats {
    let sizes: Vec<usize> =
        (0..p.n_objects() as u32).map(|x| p.copies(ObjectId(x)).len()).collect();
    let total: usize = sizes.iter().sum();
    PlacementStats {
        total_copies: total,
        redundant_objects: sizes.iter().filter(|&&s| s > 1).count(),
        max_copies: sizes.iter().copied().max().unwrap_or(0),
        mean_copies: if sizes.is_empty() { 0.0 } else { total as f64 / sizes.len() as f64 },
    }
}

/// A congestion measurement together with its bottleneck resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The maximum relative load is attained on a switch.
    Edge(hbn_topology::EdgeId),
    /// The maximum relative load is attained on a bus.
    Bus(NodeId),
    /// The network carries no load at all.
    None,
}

/// Congestion value with the resource attaining it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestionReport {
    /// The congestion (max relative load), exact.
    pub congestion: LoadRatio,
    /// Where the maximum is attained.
    pub bottleneck: Bottleneck,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, star, BandwidthProfile};

    fn simple_matrix(net: &Network) -> AccessMatrix {
        let mut m = AccessMatrix::new(2);
        let procs = net.processors();
        m.add(procs[0], ObjectId(0), 3, 1);
        m.add(procs[1], ObjectId(0), 0, 2);
        m.add(procs[2], ObjectId(1), 5, 0);
        m
    }

    #[test]
    fn single_leaf_placement_validates() {
        let net = star(4, 10);
        let m = simple_matrix(&net);
        let p = Placement::single_leaf(&net, &m, |_| net.processors()[0]);
        p.validate(&net, &m).unwrap();
        assert!(p.is_leaf_only(&net));
        assert!(p.is_single_reference());
        assert_eq!(p.total_copies(), 2);
    }

    #[test]
    fn validate_rejects_missing_copy() {
        let net = star(4, 10);
        let m = simple_matrix(&net);
        let mut p = Placement::single_leaf(&net, &m, |_| net.processors()[0]);
        p.copies[0].clear();
        assert!(matches!(
            p.validate(&net, &m),
            Err(PlacementError::NoCopies(_) | PlacementError::ServerWithoutCopy { .. })
        ));
    }

    #[test]
    fn validate_rejects_coverage_mismatch() {
        let net = star(4, 10);
        let m = simple_matrix(&net);
        let mut p = Placement::single_leaf(&net, &m, |_| net.processors()[0]);
        p.assignments[0].pop();
        assert!(matches!(p.validate(&net, &m), Err(PlacementError::CoverageMismatch { .. })));
    }

    #[test]
    fn validate_rejects_phantom_assignment() {
        let net = star(4, 10);
        let m = simple_matrix(&net);
        let mut p = Placement::single_leaf(&net, &m, |_| net.processors()[0]);
        p.push_assignment(
            ObjectId(1),
            AssignmentEntry {
                processor: net.processors()[3],
                server: net.processors()[0],
                reads: 1,
                writes: 0,
            },
        );
        assert!(matches!(p.validate(&net, &m), Err(PlacementError::CoverageMismatch { .. })));
    }

    #[test]
    fn split_assignment_is_not_single_reference() {
        let net = star(4, 10);
        let mut m = AccessMatrix::new(1);
        m.add(net.processors()[0], ObjectId(0), 4, 0);
        let mut p = Placement::new(1);
        p.add_copy(ObjectId(0), net.processors()[1]);
        p.add_copy(ObjectId(0), net.processors()[2]);
        p.push_assignment(
            ObjectId(0),
            AssignmentEntry {
                processor: net.processors()[0],
                server: net.processors()[1],
                reads: 2,
                writes: 0,
            },
        );
        p.push_assignment(
            ObjectId(0),
            AssignmentEntry {
                processor: net.processors()[0],
                server: net.processors()[2],
                reads: 2,
                writes: 0,
            },
        );
        p.validate(&net, &m).unwrap();
        assert!(!p.is_single_reference());
    }

    #[test]
    fn nearest_copy_map_prefers_close_then_small_id() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let procs = net.processors();
        // Copies on the first and last processor.
        let copies = vec![procs[0], procs[3]];
        let map = nearest_copy_map(&net, &copies);
        assert_eq!(map[procs[0].index()], procs[0]);
        assert_eq!(map[procs[3].index()], procs[3]);
        // procs[1] shares a bus with procs[0].
        assert_eq!(map[procs[1].index()], procs[0]);
        assert_eq!(map[procs[2].index()], procs[3]);
    }

    #[test]
    fn nearest_assignment_builds_compliant_routing() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let mut m = AccessMatrix::new(1);
        for &p in net.processors() {
            m.add(p, ObjectId(0), 2, 1);
        }
        let mut p = Placement::new(1);
        p.add_copy(ObjectId(0), net.processors()[0]);
        p.add_copy(ObjectId(0), net.processors()[2]);
        p.nearest_assignment(&net, &m);
        p.validate(&net, &m).unwrap();
        assert!(p.is_single_reference());
    }

    #[test]
    fn stats() {
        let net = star(4, 10);
        let m = simple_matrix(&net);
        let mut p = Placement::single_leaf(&net, &m, |_| net.processors()[0]);
        p.add_copy(ObjectId(0), net.processors()[1]);
        let s = placement_stats(&p);
        assert_eq!(s.total_copies, 3);
        assert_eq!(s.redundant_objects, 1);
        assert_eq!(s.max_copies, 2);
        assert!((s.mean_copies - 1.5).abs() < 1e-12);
    }
}
