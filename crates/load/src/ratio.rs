//! Exact rational relative loads.
//!
//! Congestion is a maximum of fractions `load / bandwidth`. Comparing such
//! fractions in floating point can mis-order values that differ by less
//! than an ulp — which matters for the exact solvers and for the
//! NP-hardness experiment, where the yes/no answer hinges on an exact
//! threshold (`congestion ≤ 4k`). [`LoadRatio`] compares fractions exactly
//! by `u128` cross-multiplication.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A non-negative fraction `load / bandwidth` with exact ordering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadRatio {
    /// Numerator: the (possibly doubled, for buses) load.
    pub load: u64,
    /// Denominator: the (possibly doubled) bandwidth; must be non-zero.
    pub bandwidth: u64,
}

impl LoadRatio {
    /// The zero ratio.
    pub const ZERO: LoadRatio = LoadRatio { load: 0, bandwidth: 1 };

    /// Build a ratio; `bandwidth` must be non-zero.
    #[inline]
    pub fn new(load: u64, bandwidth: u64) -> Self {
        debug_assert!(bandwidth > 0, "bandwidth must be positive");
        LoadRatio { load, bandwidth }
    }

    /// An integral ratio `n / 1`.
    #[inline]
    pub fn integral(n: u64) -> Self {
        LoadRatio { load: n, bandwidth: 1 }
    }

    /// The value as `f64` (for reporting only; comparisons stay exact).
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.load as f64 / self.bandwidth as f64
    }

    /// Exactly `self ≤ factor · other`? Used for approximation-ratio
    /// assertions like `C ≤ 7 · C_opt` without any rounding.
    pub fn le_scaled(&self, factor: u64, other: LoadRatio) -> bool {
        // self.load / self.bw ≤ factor * other.load / other.bw
        (self.load as u128) * (other.bandwidth as u128)
            <= (factor as u128) * (other.load as u128) * (self.bandwidth as u128)
    }

    /// The exact ratio `self / other` as `f64`, `None` when `other` is zero.
    pub fn ratio_to(&self, other: LoadRatio) -> Option<f64> {
        if other.load == 0 {
            return None;
        }
        Some(self.as_f64() / other.as_f64())
    }
}

impl PartialEq for LoadRatio {
    fn eq(&self, other: &Self) -> bool {
        (self.load as u128) * (other.bandwidth as u128)
            == (other.load as u128) * (self.bandwidth as u128)
    }
}

impl Eq for LoadRatio {}

impl PartialOrd for LoadRatio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LoadRatio {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = (self.load as u128) * (other.bandwidth as u128);
        let rhs = (other.load as u128) * (self.bandwidth as u128);
        lhs.cmp(&rhs)
    }
}

impl std::fmt::Display for LoadRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.bandwidth == 1 {
            write!(f, "{}", self.load)
        } else {
            write!(f, "{}/{}", self.load, self.bandwidth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_exact() {
        // 1/3 < 3333.../10^k style near-ties order correctly.
        let a = LoadRatio::new(1, 3);
        let b = LoadRatio::new(333_333_333_333_333_333, 10u64.pow(18));
        assert!(b < a);
        assert!(a > b);
        assert_eq!(LoadRatio::new(2, 4), LoadRatio::new(1, 2));
    }

    #[test]
    fn ordering_survives_huge_values() {
        let a = LoadRatio::new(u64::MAX, 1);
        let b = LoadRatio::new(u64::MAX - 1, 1);
        assert!(b < a);
        let c = LoadRatio::new(u64::MAX, u64::MAX);
        assert_eq!(c, LoadRatio::integral(1));
    }

    #[test]
    fn le_scaled_matches_rationals() {
        // 10/3 ≤ 7 * 1/2  <=>  20 ≤ 21.
        assert!(LoadRatio::new(10, 3).le_scaled(7, LoadRatio::new(1, 2)));
        // 11/3 ≤ 7 * 1/2  <=>  22 ≤ 21 fails.
        assert!(!LoadRatio::new(11, 3).le_scaled(7, LoadRatio::new(1, 2)));
        // Zero cases.
        assert!(LoadRatio::ZERO.le_scaled(0, LoadRatio::ZERO));
        assert!(!LoadRatio::integral(1).le_scaled(7, LoadRatio::ZERO));
    }

    #[test]
    fn ratio_to_and_display() {
        assert_eq!(LoadRatio::new(6, 2).ratio_to(LoadRatio::new(3, 2)), Some(2.0));
        assert_eq!(LoadRatio::integral(1).ratio_to(LoadRatio::ZERO), None);
        assert_eq!(LoadRatio::new(5, 1).to_string(), "5");
        assert_eq!(LoadRatio::new(5, 2).to_string(), "5/2");
    }

    #[test]
    fn as_f64_matches() {
        assert!((LoadRatio::new(7, 2).as_f64() - 3.5).abs() < 1e-12);
    }
}
