//! # hbn-load
//!
//! Placements and exact load accounting for hierarchical bus networks.
//!
//! Implements the cost model of the paper's Section 1.1: read paths, write
//! paths plus Steiner-tree update broadcasts, half-sum bus loads, and the
//! congestion (maximum relative load) compared *exactly* as rationals.

#![warn(missing_docs)]

pub mod accounting;
pub mod bounds;
pub mod placement;
pub mod ratio;

pub use accounting::{add_object_loads_dense, add_object_loads_sparse, LoadMap};
pub use bounds::{makespan_bounds, InjectionProfile, MakespanBounds};
pub use placement::{
    nearest_copy_map, placement_stats, AssignmentEntry, Bottleneck, CongestionReport, Placement,
    PlacementError, PlacementStats,
};
pub use ratio::LoadRatio;
