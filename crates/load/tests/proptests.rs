//! Property tests for load accounting: the two accounting paths agree,
//! congestion behaves monotonically, and nearest-copy maps are truly
//! nearest.

use hbn_load::{
    add_object_loads_dense, add_object_loads_sparse, nearest_copy_map, LoadMap, Placement,
};
use hbn_topology::generators::{random_network, BandwidthProfile};
use hbn_topology::{Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_instance() -> impl Strategy<Value = (Network, AccessMatrix, Placement)> {
    (1usize..6, 3usize..12, any::<u64>()).prop_map(|(buses, procs, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_network(buses, procs.max(buses * 2), BandwidthProfile::Uniform, &mut rng);
        let mut m = AccessMatrix::new(2);
        for x in 0..2u32 {
            for &p in net.processors() {
                if rng.gen_bool(0.6) {
                    m.add(p, ObjectId(x), rng.gen_range(0..6), rng.gen_range(0..5));
                }
            }
        }
        let mut pl = Placement::new(2);
        for x in m.objects() {
            if m.total_weight(x) == 0 {
                continue;
            }
            let k = rng.gen_range(1..=3usize);
            for _ in 0..k {
                let leaf = net.processors()[rng.gen_range(0..net.n_processors())];
                pl.add_copy(x, leaf);
            }
            pl.nearest_assignment_for(&net, &m, x);
        }
        (net, m, pl)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_and_dense_accounting_agree((net, m, pl) in arb_instance()) {
        pl.validate(&net, &m).unwrap();
        for x in m.objects() {
            let mut a = LoadMap::zero(&net);
            add_object_loads_sparse(&net, &m, &pl, x, &mut a);
            let mut b = LoadMap::zero(&net);
            add_object_loads_dense(&net, &m, &pl, x, &mut b);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn congestion_is_monotone_in_loads((net, m, pl) in arb_instance()) {
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let mut doubled = loads.clone();
        doubled.add_assign(&loads);
        prop_assert!(loads.congestion(&net).congestion <= doubled.congestion(&net).congestion);
        prop_assert!(loads.dominated_by(&doubled));
    }

    #[test]
    fn nearest_copy_map_is_truly_nearest((net, m, pl) in arb_instance()) {
        for x in m.objects() {
            let copies = pl.copies(x);
            if copies.is_empty() {
                continue;
            }
            let map = nearest_copy_map(&net, copies);
            for v in net.nodes() {
                let chosen = map[v.index()];
                let d = net.distance(v, chosen);
                for &c in copies {
                    prop_assert!(d <= net.distance(v, c),
                        "node {} got copy {} at distance {}, but {} is at {}",
                        v, chosen, d, c, net.distance(v, c));
                }
            }
        }
    }

    #[test]
    fn bus_loads_are_half_incident_sums((net, m, pl) in arb_instance()) {
        let loads = LoadMap::from_placement(&net, &m, &pl);
        for v in net.nodes() {
            if !net.is_bus(v) {
                continue;
            }
            let mut sum = 0u64;
            for e in net.edges() {
                let (c, p) = net.edge_endpoints(e);
                if c == v || p == v {
                    sum += loads.edge_load(e);
                }
            }
            prop_assert_eq!(loads.bus_load_x2(&net, v), sum);
        }
    }

    #[test]
    fn single_reference_placements_round_trip_totals((net, m, pl) in arb_instance()) {
        // Total path traffic conservation: sum over assignments of
        // weight × distance equals the total edge load minus broadcasts.
        let loads = LoadMap::from_placement(&net, &m, &pl);
        let mut expected: u64 = 0;
        for x in m.objects() {
            for e in pl.assignment(x) {
                expected += (e.reads + e.writes) * u64::from(net.distance(e.processor, e.server));
            }
            let kappa = m.write_contention(x);
            expected += kappa
                * hbn_topology::steiner::steiner_edges(&net, pl.copies(x)).len() as u64;
        }
        prop_assert_eq!(loads.total(), expected);
    }
}

/// Deterministic regression: `NodeId` ordering of copies does not change
/// totals (assignment may differ on ties, loads may differ per edge, but
/// validation still holds).
#[test]
fn tie_breaking_is_stable() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = random_network(3, 8, BandwidthProfile::Uniform, &mut rng);
    let mut m = AccessMatrix::new(1);
    for &p in net.processors() {
        m.add(p, ObjectId(0), 2, 1);
    }
    let mut pl = Placement::new(1);
    pl.set_copies(ObjectId(0), vec![net.processors()[0], net.processors()[3]]);
    pl.nearest_assignment(&net, &m);
    let a = LoadMap::from_placement(&net, &m, &pl);
    pl.nearest_assignment(&net, &m);
    let b = LoadMap::from_placement(&net, &m, &pl);
    assert_eq!(a, b);
    let _: Vec<NodeId> = pl.copies(ObjectId(0)).to_vec();
}
