//! # hbn-topology
//!
//! Hierarchical bus networks, the substrate of *"Data Management in
//! Hierarchical Bus Networks"* (Meyer auf der Heide, Räcke, Westermann,
//! SPAA 2000).
//!
//! A hierarchical bus network is a weighted tree `T = (P ∪ B, E, b)`:
//! processors `P` at the leaves, buses `B` at the inner nodes, switches as
//! edges, and a bandwidth function `b` on buses and switches. Processor
//! switches have bandwidth 1 and are the slowest part of the system.
//!
//! This crate provides:
//!
//! * [`Network`] — the immutable rooted tree with O(1) structural queries,
//!   LCA, paths and subtree ranges ([`tree`]);
//! * [`NetworkBuilder`] — validated construction ([`builder`]);
//! * [`CapacityOverlay`] — per-bus degraded/dead capacity overlays for
//!   fault injection — and [`CapacityProfile`] — static heterogeneous
//!   bus capacities applied at build time ([`capacity`]);
//! * deterministic generators for stars, balanced trees, caterpillars, bus
//!   paths and random networks ([`generators`]);
//! * SCI ring-of-rings networks and the paper's Figure 1 → Figure 2
//!   reduction to bus trees ([`sci`]);
//! * Steiner trees of terminal sets, used by write-broadcast accounting
//!   ([`steiner`]);
//! * DOT export ([`dot`]) and serde-friendly specs ([`spec`]).

#![warn(missing_docs)]

pub mod builder;
pub mod capacity;
pub mod dot;
pub mod error;
pub mod generators;
pub mod ids;
pub mod sci;
pub mod spec;
pub mod steiner;
pub mod tree;

pub use builder::NetworkBuilder;
pub use capacity::{CapacityOverlay, CapacityProfile};
pub use error::TopologyError;
pub use ids::{Bandwidth, DirEdge, Direction, EdgeId, NodeId};
pub use spec::NetworkSpec;
pub use tree::{Network, NodeKind, PathEdges, PathNodes};
