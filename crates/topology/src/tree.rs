//! The core network representation: a weighted tree with processors at the
//! leaves and buses at the inner nodes.
//!
//! The tree is stored rooted at a fixed bus near the tree center (so the
//! rooted height is within a factor of ~2 of any other choice, matching the
//! `height(T)` terms in the paper's bounds). Per-object logical re-rooting
//! — the nibble strategy roots at the per-object center of gravity — is done
//! by the algorithms in `hbn-core` without touching this structure.

use crate::error::TopologyError;
use crate::ids::{Bandwidth, EdgeId, NodeId};

/// Whether a node is a processor (leaf) or a bus (inner node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NodeKind {
    /// A processor: a leaf of the tree; the only kind of node that can hold
    /// copies of shared data objects and issue requests.
    Processor,
    /// A bus: an inner node; its load is half the sum of the loads of its
    /// incident switches.
    Bus,
}

/// An immutable hierarchical bus network.
///
/// Construct one through [`crate::NetworkBuilder`] or the generators in
/// [`crate::generators`]. All structural queries (parents, children, depths,
/// LCA, ancestor tests, pre/post orders) are O(1) or iterator-cheap after
/// construction.
#[derive(Debug, Clone)]
pub struct Network {
    kinds: Vec<NodeKind>,
    /// Bandwidth of each node; meaningful for buses only (processors get 1).
    node_bandwidth: Vec<Bandwidth>,
    /// Bandwidth of the switch from each node to its parent (root slot unused).
    edge_bandwidth: Vec<Bandwidth>,
    parent: Vec<NodeId>,
    children: Vec<Vec<NodeId>>,
    root: NodeId,
    depth: Vec<u32>,
    /// Preorder: parents before children.
    preorder: Vec<NodeId>,
    /// Entry/exit times of the preorder traversal, for ancestor tests.
    tin: Vec<u32>,
    tout: Vec<u32>,
    processors: Vec<NodeId>,
    /// Dense processor index per node (`u32::MAX` for buses).
    proc_index: Vec<u32>,
    height: u32,
    max_degree: u32,
    /// Binary lifting table: `up[k][v]` is the 2^k-th ancestor of `v`.
    up: Vec<Vec<NodeId>>,
}

impl Network {
    /// Build the rooted representation from a parent-validated edge list.
    ///
    /// `kinds`, `node_bw` are per node; `edges` are `(a, b, bandwidth)`
    /// triples. The caller (the builder) has already validated the model
    /// constraints; this function only roots and indexes the tree.
    pub(crate) fn from_validated(
        kinds: Vec<NodeKind>,
        node_bw: Vec<Bandwidth>,
        edges: &[(NodeId, NodeId, Bandwidth)],
        root: NodeId,
    ) -> Network {
        let n = kinds.len();
        let mut adj: Vec<Vec<(NodeId, Bandwidth)>> = vec![Vec::new(); n];
        for &(a, b, bw) in edges {
            adj[a.index()].push((b, bw));
            adj[b.index()].push((a, bw));
        }
        let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0) as u32;

        let mut parent = vec![root; n];
        let mut edge_bandwidth = vec![0; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        let mut preorder = Vec::with_capacity(n);
        let mut visited = vec![false; n];

        // Iterative DFS to avoid stack overflow on deep trees.
        let mut stack = vec![root];
        visited[root.index()] = true;
        while let Some(v) = stack.pop() {
            preorder.push(v);
            for &(u, bw) in &adj[v.index()] {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    parent[u.index()] = v;
                    edge_bandwidth[u.index()] = bw;
                    depth[u.index()] = depth[v.index()] + 1;
                    children[v.index()].push(u);
                    stack.push(u);
                }
            }
        }
        debug_assert_eq!(preorder.len(), n, "tree must be connected");
        // `stack.pop()` reverses child order; re-sort children for
        // deterministic, id-ordered traversal.
        for ch in &mut children {
            ch.sort_unstable();
        }
        // Recompute preorder deterministically (id-ordered children).
        preorder.clear();
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut timer = 0u32;
        // Stack entries: (node, entered?)
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((v, entered)) = stack.pop() {
            if entered {
                tout[v.index()] = timer;
                continue;
            }
            tin[v.index()] = timer;
            timer += 1;
            preorder.push(v);
            stack.push((v, true));
            // Push children in reverse so they pop in ascending id order.
            for &u in children[v.index()].iter().rev() {
                stack.push((u, false));
            }
        }

        let height = depth.iter().copied().max().unwrap_or(0);

        let processors: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|v| kinds[v.index()] == NodeKind::Processor).collect();
        let mut proc_index = vec![u32::MAX; n];
        for (i, &p) in processors.iter().enumerate() {
            proc_index[p.index()] = i as u32;
        }

        // Binary lifting table for LCA queries.
        let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
        let mut up: Vec<Vec<NodeId>> = Vec::with_capacity(levels);
        up.push(parent.clone());
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<NodeId> = (0..n).map(|v| prev[prev[v].index()]).collect();
            up.push(next);
        }

        Network {
            kinds,
            node_bandwidth: node_bw,
            edge_bandwidth,
            parent,
            children,
            root,
            depth,
            preorder,
            tin,
            tout,
            processors,
            proc_index,
            height,
            max_degree,
            up,
        }
    }

    /// Total number of nodes `|P ∪ B|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of processors `|P|` (the leaves).
    #[inline]
    pub fn n_processors(&self) -> usize {
        self.processors.len()
    }

    /// Number of buses `|B|` (the inner nodes).
    #[inline]
    pub fn n_buses(&self) -> usize {
        self.n_nodes() - self.n_processors()
    }

    /// Iterate over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes() as u32).map(NodeId)
    }

    /// Iterate over all edges (identified by their child endpoint).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let root = self.root;
        (0..self.n_nodes() as u32).map(NodeId).filter(move |&v| v != root).map(EdgeId::from)
    }

    /// Number of edges (`n - 1`).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_nodes() - 1
    }

    /// The fixed root of the stored representation (a bus whenever the
    /// network has one).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The kind of `v`.
    #[inline]
    pub fn kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v.index()]
    }

    /// Whether `v` is a processor (leaf).
    #[inline]
    pub fn is_processor(&self, v: NodeId) -> bool {
        self.kinds[v.index()] == NodeKind::Processor
    }

    /// Whether `v` is a bus (inner node).
    #[inline]
    pub fn is_bus(&self, v: NodeId) -> bool {
        self.kinds[v.index()] == NodeKind::Bus
    }

    /// The parent of `v` (the root is its own parent).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v.index()]
    }

    /// The switch connecting `v` to its parent, or `None` for the root.
    #[inline]
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        if v == self.root {
            None
        } else {
            Some(EdgeId::from(v))
        }
    }

    /// The children of `v` in ascending id order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Unrooted degree of `v` (number of incident switches).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.children[v.index()].len() + usize::from(v != self.root)
    }

    /// Maximum unrooted degree over all nodes, the paper's `degree(T)`.
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Depth of `v` below the root (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Height of the rooted tree (max depth), the paper's `height(T)`.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Level of `v` in the paper's numbering: the root is on level
    /// `height(T)`, children of level `i + 1` nodes are on level `i`.
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.height - self.depth[v.index()]
    }

    /// Bandwidth of bus `v`. Processors report 1.
    #[inline]
    pub fn node_bandwidth(&self, v: NodeId) -> Bandwidth {
        self.node_bandwidth[v.index()]
    }

    /// Bandwidth of switch `e`.
    #[inline]
    pub fn edge_bandwidth(&self, e: EdgeId) -> Bandwidth {
        self.edge_bandwidth[e.index()]
    }

    /// Overwrite the bandwidth of bus `v`. This is the build-time hook
    /// for static heterogeneous capacity profiles
    /// ([`crate::capacity::CapacityProfile`]); fault-time changes go
    /// through [`crate::CapacityOverlay`] instead so they can be
    /// restored.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a bus or `bandwidth` is 0.
    pub fn set_bus_bandwidth(&mut self, v: NodeId, bandwidth: Bandwidth) {
        assert!(self.is_bus(v), "set_bus_bandwidth: {v} is not a bus");
        assert!(bandwidth >= 1, "set_bus_bandwidth: bandwidth must be >= 1");
        self.node_bandwidth[v.index()] = bandwidth;
    }

    /// Both endpoints of edge `e` as `(child, parent)`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let c = e.child();
        (c, self.parent(c))
    }

    /// All processors (leaves) in ascending id order.
    #[inline]
    pub fn processors(&self) -> &[NodeId] {
        &self.processors
    }

    /// Dense index of processor `p` in `0..n_processors()`.
    ///
    /// # Panics
    /// Panics if `p` is a bus.
    #[inline]
    pub fn processor_index(&self, p: NodeId) -> usize {
        let i = self.proc_index[p.index()];
        assert!(i != u32::MAX, "{p} is not a processor");
        i as usize
    }

    /// The processor with dense index `i`.
    #[inline]
    pub fn processor_at(&self, i: usize) -> NodeId {
        self.processors[i]
    }

    /// Preorder over all nodes (every parent precedes its children).
    #[inline]
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Postorder over all nodes (every child precedes its parent).
    pub fn postorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.preorder.iter().rev().copied()
    }

    /// Position of `v` in [`Network::preorder`]; ancestors sort before
    /// descendants and subtrees are contiguous ranges.
    #[inline]
    pub fn preorder_index(&self, v: NodeId) -> u32 {
        self.tin[v.index()]
    }

    /// Whether `a` is an ancestor of `b` (inclusive: every node is an
    /// ancestor of itself).
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.tin[a.index()] <= self.tin[b.index()] && self.tout[b.index()] <= self.tout[a.index()]
    }

    /// Lowest common ancestor of `a` and `b` under the fixed root.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let mut a = a;
        for k in (0..self.up.len()).rev() {
            let anc = self.up[k][a.index()];
            if !self.is_ancestor(anc, b) {
                a = anc;
            }
        }
        self.up[0][a.index()]
    }

    /// Number of edges on the unique path between `a` and `b`.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let l = self.lca(a, b);
        self.depth(a) + self.depth(b) - 2 * self.depth(l)
    }

    /// The edges on the unique path between `a` and `b`, in order from `a`
    /// up to the LCA and then down to `b`.
    pub fn path_edges(&self, a: NodeId, b: NodeId) -> Vec<EdgeId> {
        self.path_edges_iter(a, b).collect()
    }

    /// Allocation-free iterator over the edges of the `a`–`b` path, in
    /// order from `a` up to the LCA and then down to `b`. One LCA query up
    /// front, then O(1) per upward step and O(log degree) per downward
    /// step ([`Network::child_towards`]).
    pub fn path_edges_iter(&self, a: NodeId, b: NodeId) -> PathEdges<'_> {
        let l = self.lca(a, b);
        let remaining = (self.depth(a) + self.depth(b) - 2 * self.depth(l)) as usize;
        PathEdges { net: self, up: a, lca: l, down: l, target: b, remaining }
    }

    /// The nodes on the unique path between `a` and `b`, inclusive.
    pub fn path_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        self.path_nodes_iter(a, b).collect()
    }

    /// Allocation-free iterator over the nodes of the `a`–`b` path,
    /// inclusive of both endpoints (a single node when `a == b`).
    pub fn path_nodes_iter(&self, a: NodeId, b: NodeId) -> PathNodes<'_> {
        let l = self.lca(a, b);
        let remaining = (self.depth(a) + self.depth(b) - 2 * self.depth(l)) as usize + 1;
        PathNodes { net: self, up: Some(a), lca: l, down: l, target: b, remaining }
    }

    /// Nodes of the subtree rooted at `v` (under the fixed root), in
    /// preorder. `v` itself comes first.
    pub fn subtree(&self, v: NodeId) -> &[NodeId] {
        // The preorder lays out each subtree contiguously.
        let start = self.tin[v.index()] as usize;
        let len = self.subtree_size(v);
        &self.preorder[start..start + len]
    }

    /// Number of nodes in the subtree rooted at `v`.
    #[inline]
    pub fn subtree_size(&self, v: NodeId) -> usize {
        // Preorder tin/tout: tout - tin equals the subtree size because the
        // timer only advances on entry.
        (self.tout[v.index()] - self.tin[v.index()]) as usize
    }

    /// The child of `v` whose subtree contains `target`.
    ///
    /// Children are stored in ascending id order, which is also ascending
    /// preorder-entry order, so the lookup is a binary search over the
    /// children's `tin` values: O(log degree), independent of tree height
    /// (the old binary-lifting descent was O(log |V|) per step). Callers
    /// walking a sorted destination group can additionally cache the
    /// returned child's preorder range ([`Network::preorder_index`] /
    /// [`Network::subtree_size`]) and skip the search while consecutive
    /// targets stay inside it, amortizing to O(1) per target — the packet
    /// simulator's hop grouping does exactly that.
    ///
    /// # Panics
    /// Panics if `target` is not a proper descendant of `v`.
    pub fn child_towards(&self, v: NodeId, target: NodeId) -> NodeId {
        let t = self.tin[target.index()];
        let kids = &self.children[v.index()];
        let idx = kids.partition_point(|&c| self.tin[c.index()] <= t);
        assert!(idx > 0, "{target} is not a proper descendant of {v}");
        let c = kids[idx - 1];
        assert!(t < self.tout[c.index()], "{target} is not a proper descendant of {v}");
        c
    }

    /// The neighbor of `v` on the path towards `target`.
    ///
    /// # Panics
    /// Panics if `v == target`.
    pub fn step_towards(&self, v: NodeId, target: NodeId) -> NodeId {
        assert_ne!(v, target, "no step from a node to itself");
        if self.is_ancestor(v, target) {
            self.child_towards(v, target)
        } else {
            self.parent(v)
        }
    }

    /// Validate internal invariants; used by tests and after deserialization.
    pub fn check_invariants(&self) -> Result<(), TopologyError> {
        let n = self.n_nodes();
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        for v in self.nodes() {
            match self.kind(v) {
                NodeKind::Processor => {
                    if !self.children(v).is_empty() {
                        return Err(TopologyError::ProcessorNotLeaf(v));
                    }
                }
                NodeKind::Bus => {
                    if self.degree(v) < 2 {
                        return Err(TopologyError::BusIsLeaf(v));
                    }
                }
            }
        }
        if self.processors.is_empty() {
            return Err(TopologyError::NoProcessors);
        }
        Ok(())
    }
}

/// Iterator over the edges of a tree path; see
/// [`Network::path_edges_iter`].
#[derive(Debug, Clone)]
pub struct PathEdges<'a> {
    net: &'a Network,
    /// Next node on the upward leg (`up != lca` means the leg is live).
    up: NodeId,
    lca: NodeId,
    /// Current node on the downward leg, descending towards `target`.
    down: NodeId,
    target: NodeId,
    remaining: usize,
}

impl Iterator for PathEdges<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        if self.up != self.lca {
            let e = EdgeId::from(self.up);
            self.up = self.net.parent(self.up);
            self.remaining -= 1;
            return Some(e);
        }
        if self.down != self.target {
            let c = self.net.child_towards(self.down, self.target);
            self.down = c;
            self.remaining -= 1;
            return Some(EdgeId::from(c));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PathEdges<'_> {}

/// Iterator over the nodes of a tree path (endpoints inclusive); see
/// [`Network::path_nodes_iter`].
#[derive(Debug, Clone)]
pub struct PathNodes<'a> {
    net: &'a Network,
    /// Next node to yield on the upward leg; `None` once the LCA is out.
    up: Option<NodeId>,
    lca: NodeId,
    down: NodeId,
    target: NodeId,
    remaining: usize,
}

impl Iterator for PathNodes<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if let Some(v) = self.up {
            self.up = if v == self.lca { None } else { Some(self.net.parent(v)) };
            self.remaining -= 1;
            return Some(v);
        }
        if self.down != self.target {
            let c = self.net.child_towards(self.down, self.target);
            self.down = c;
            self.remaining -= 1;
            return Some(c);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PathNodes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// A two-level network:
    /// root bus 0 — buses 1, 2; bus 1 — procs 3, 4; bus 2 — procs 5, 6, 7.
    fn two_level() -> Network {
        let mut b = NetworkBuilder::new();
        let r = b.add_bus(4);
        let b1 = b.add_bus(2);
        let b2 = b.add_bus(2);
        let p: Vec<_> = (0..5).map(|_| b.add_processor()).collect();
        b.connect(r, b1, 2).unwrap();
        b.connect(r, b2, 3).unwrap();
        b.connect(b1, p[0], 1).unwrap();
        b.connect(b1, p[1], 1).unwrap();
        b.connect(b2, p[2], 1).unwrap();
        b.connect(b2, p[3], 1).unwrap();
        b.connect(b2, p[4], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_kinds() {
        let t = two_level();
        assert_eq!(t.n_nodes(), 8);
        assert_eq!(t.n_processors(), 5);
        assert_eq!(t.n_buses(), 3);
        assert_eq!(t.n_edges(), 7);
        assert!(t.is_bus(NodeId(0)));
        assert!(t.is_processor(NodeId(3)));
        t.check_invariants().unwrap();
    }

    #[test]
    fn parents_and_children() {
        let t = two_level();
        // Root is the center bus 0.
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(1)), NodeId(0));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.children(NodeId(2)), &[NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(t.parent_edge(t.root()), None);
        assert_eq!(t.parent_edge(NodeId(5)), Some(EdgeId(5)));
    }

    #[test]
    fn depth_height_level() {
        let t = two_level();
        assert_eq!(t.height(), 2);
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(2)), 1);
        assert_eq!(t.depth(NodeId(6)), 2);
        assert_eq!(t.level(NodeId(0)), 2);
        assert_eq!(t.level(NodeId(6)), 0);
    }

    #[test]
    fn degrees() {
        let t = two_level();
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(2)), 4);
        assert_eq!(t.degree(NodeId(5)), 1);
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    fn lca_and_distance() {
        let t = two_level();
        assert_eq!(t.lca(NodeId(3), NodeId(4)), NodeId(1));
        assert_eq!(t.lca(NodeId(3), NodeId(5)), NodeId(0));
        assert_eq!(t.lca(NodeId(5), NodeId(5)), NodeId(5));
        assert_eq!(t.lca(NodeId(0), NodeId(7)), NodeId(0));
        assert_eq!(t.distance(NodeId(3), NodeId(5)), 4);
        assert_eq!(t.distance(NodeId(3), NodeId(4)), 2);
        assert_eq!(t.distance(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn paths() {
        let t = two_level();
        let edges = t.path_edges(NodeId(3), NodeId(5));
        assert_eq!(edges, vec![EdgeId(3), EdgeId(1), EdgeId(2), EdgeId(5)]);
        let nodes = t.path_nodes(NodeId(3), NodeId(5));
        assert_eq!(nodes, vec![NodeId(3), NodeId(1), NodeId(0), NodeId(2), NodeId(5)]);
        assert_eq!(t.path_edges(NodeId(4), NodeId(4)), vec![]);
    }

    #[test]
    fn ancestor_and_subtree() {
        let t = two_level();
        assert!(t.is_ancestor(NodeId(0), NodeId(7)));
        assert!(t.is_ancestor(NodeId(2), NodeId(6)));
        assert!(!t.is_ancestor(NodeId(1), NodeId(6)));
        assert!(t.is_ancestor(NodeId(4), NodeId(4)));
        assert_eq!(t.subtree_size(NodeId(2)), 4);
        assert_eq!(t.subtree(NodeId(2)), &[NodeId(2), NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(t.subtree_size(t.root()), 8);
    }

    #[test]
    fn step_towards_descends_and_ascends() {
        let t = two_level();
        assert_eq!(t.step_towards(NodeId(0), NodeId(6)), NodeId(2));
        assert_eq!(t.step_towards(NodeId(2), NodeId(6)), NodeId(6));
        assert_eq!(t.step_towards(NodeId(6), NodeId(3)), NodeId(2));
        assert_eq!(t.step_towards(NodeId(1), NodeId(7)), NodeId(0));
    }

    #[test]
    fn child_towards_picks_the_covering_subtree() {
        let t = two_level();
        assert_eq!(t.child_towards(NodeId(0), NodeId(3)), NodeId(1));
        assert_eq!(t.child_towards(NodeId(0), NodeId(7)), NodeId(2));
        assert_eq!(t.child_towards(NodeId(2), NodeId(6)), NodeId(6));
        assert_eq!(t.child_towards(NodeId(0), NodeId(1)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not a proper descendant")]
    fn child_towards_rejects_non_descendants() {
        let t = two_level();
        t.child_towards(NodeId(1), NodeId(7));
    }

    /// Independent oracle: climb both endpoints to the LCA with plain
    /// parent walks (no iterator code involved).
    fn naive_path_nodes(t: &Network, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let l = t.lca(a, b);
        let mut nodes = Vec::new();
        let mut v = a;
        while v != l {
            nodes.push(v);
            v = t.parent(v);
        }
        nodes.push(l);
        let mut down = Vec::new();
        let mut v = b;
        while v != l {
            down.push(v);
            v = t.parent(v);
        }
        down.reverse();
        nodes.extend(down);
        nodes
    }

    #[test]
    fn path_iterators_match_naive_walks() {
        let t = two_level();
        for a in t.nodes() {
            for b in t.nodes() {
                let want_nodes = naive_path_nodes(&t, a, b);
                let want_edges: Vec<EdgeId> = want_nodes
                    .windows(2)
                    .map(|w| {
                        if t.parent(w[1]) == w[0] {
                            EdgeId::from(w[1])
                        } else {
                            EdgeId::from(w[0])
                        }
                    })
                    .collect();
                let edges: Vec<EdgeId> = t.path_edges_iter(a, b).collect();
                assert_eq!(edges, want_edges, "{a}->{b}");
                assert_eq!(t.path_edges_iter(a, b).len(), want_edges.len());
                let nodes: Vec<NodeId> = t.path_nodes_iter(a, b).collect();
                assert_eq!(nodes, want_nodes, "{a}->{b}");
                assert_eq!(t.path_nodes_iter(a, b).len(), want_nodes.len());
            }
        }
    }

    #[test]
    fn preorder_parents_first() {
        let t = two_level();
        let pos: Vec<usize> = {
            let mut pos = vec![0; t.n_nodes()];
            for (i, &v) in t.preorder().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for v in t.nodes() {
            if v != t.root() {
                assert!(pos[t.parent(v).index()] < pos[v.index()]);
            }
        }
    }

    #[test]
    fn postorder_children_first() {
        let t = two_level();
        let mut seen = vec![false; t.n_nodes()];
        for v in t.postorder() {
            for &c in t.children(v) {
                assert!(seen[c.index()], "child {c} must appear before parent {v}");
            }
            seen[v.index()] = true;
        }
    }

    #[test]
    fn processor_indexing_roundtrip() {
        let t = two_level();
        for (i, &p) in t.processors().iter().enumerate() {
            assert_eq!(t.processor_index(p), i);
            assert_eq!(t.processor_at(i), p);
        }
    }
}
