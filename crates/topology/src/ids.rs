//! Strongly typed identifiers for nodes and edges of a hierarchical bus
//! network.
//!
//! Nodes are numbered densely from `0..n`. Every non-root node owns exactly
//! one edge — the switch connecting it to its parent under the network's
//! fixed root — so edges are identified by their child endpoint
//! ([`EdgeId::child`]).

use serde::{Deserialize, Serialize};

/// Index of a node (processor or bus) in a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an undirected edge (switch). Edge `e` connects node
/// `e.child()` to its parent in the rooted representation, so valid edge
/// ids are exactly the non-root node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The child endpoint of this edge.
    #[inline]
    pub fn child(self) -> NodeId {
        NodeId(self.0)
    }

    /// The edge index as a `usize`, for slice indexing. Per-edge arrays are
    /// indexed by the child node id, i.e. they have one (unused) slot for
    /// the root.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<NodeId> for EdgeId {
    #[inline]
    fn from(v: NodeId) -> Self {
        EdgeId(v.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed view of an edge, used by the mapping algorithm of the paper
/// (Section 3.3), which replaces every tree edge by two directed edges.
///
/// `Up` points from the child towards the root, `Down` from the parent
/// towards the child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards the root (the paper's "upward" edges).
    Up,
    /// Away from the root (the paper's "downward" edges).
    Down,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// A directed edge: an [`EdgeId`] together with a [`Direction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirEdge {
    /// The underlying undirected edge.
    pub edge: EdgeId,
    /// Orientation relative to the root.
    pub dir: Direction,
}

impl DirEdge {
    /// The upward orientation of `edge`.
    #[inline]
    pub fn up(edge: EdgeId) -> Self {
        DirEdge { edge, dir: Direction::Up }
    }

    /// The downward orientation of `edge`.
    #[inline]
    pub fn down(edge: EdgeId) -> Self {
        DirEdge { edge, dir: Direction::Down }
    }

    /// The same edge in the opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        DirEdge { edge: self.edge, dir: self.dir.reverse() }
    }
}

/// Bandwidth of a bus or switch, a positive integer as in the paper's model
/// (`b : E ∪ B → N`).
pub type Bandwidth = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId(7);
        assert_eq!(v.index(), 7);
        assert_eq!(NodeId::from(7u32), v);
        assert_eq!(v.to_string(), "v7");
    }

    #[test]
    fn edge_id_child() {
        let e = EdgeId(3);
        assert_eq!(e.child(), NodeId(3));
        assert_eq!(e.index(), 3);
        assert_eq!(EdgeId::from(NodeId(3)), e);
        assert_eq!(e.to_string(), "e3");
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Up.reverse(), Direction::Down);
        assert_eq!(Direction::Down.reverse(), Direction::Up);
        let d = DirEdge::up(EdgeId(1));
        assert_eq!(d.reverse().reverse(), d);
        assert_eq!(d.reverse(), DirEdge::down(EdgeId(1)));
    }
}
