//! Graphviz (DOT) export for visual inspection of networks.

use crate::tree::{Network, NodeKind};
use std::fmt::Write as _;

/// Render the network in Graphviz DOT format. Processors are boxes, buses
/// are ellipses labelled with their bandwidth; edges carry switch
/// bandwidths.
pub fn to_dot(net: &Network) -> String {
    let mut out = String::new();
    out.push_str("graph hbn {\n  node [fontsize=10];\n");
    for v in net.nodes() {
        match net.kind(v) {
            NodeKind::Processor => {
                let _ = writeln!(out, "  n{} [shape=box, label=\"P{}\"];", v.0, v.0);
            }
            NodeKind::Bus => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=ellipse, label=\"B{} (b={})\"];",
                    v.0,
                    v.0,
                    net.node_bandwidth(v)
                );
            }
        }
    }
    for e in net.edges() {
        let (c, p) = net.edge_endpoints(e);
        let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", p.0, c.0, net.edge_bandwidth(e));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{star, BandwidthProfile};

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let t = star(3, 7);
        let dot = to_dot(&t);
        assert!(dot.starts_with("graph hbn {"));
        assert!(dot.contains("B0 (b=7)"));
        for v in t.nodes() {
            assert!(dot.contains(&format!("n{}", v.0)));
        }
        // 3 leaf edges.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn dot_is_parsable_shape() {
        let t = crate::generators::balanced(2, 2, BandwidthProfile::Uniform);
        let dot = to_dot(&t);
        assert_eq!(dot.matches(" -- ").count(), t.n_edges());
        assert!(dot.ends_with("}\n"));
    }
}
