//! Construction and validation of hierarchical bus networks.

use crate::error::TopologyError;
use crate::ids::{Bandwidth, NodeId};
use crate::tree::{Network, NodeKind};

/// Incremental builder for a [`Network`].
///
/// Add processors and buses, connect them with switches, then call
/// [`NetworkBuilder::build`], which validates the model constraints of the
/// paper (Section 1.1):
///
/// * the graph is a tree with at least one processor,
/// * processors are exactly the leaves, buses exactly the inner nodes,
/// * switches connect a processor to a bus or two buses (never two
///   processors),
/// * processor switches have bandwidth 1, all other bandwidths are ≥ 1.
///
/// The built network is rooted at a tree center (a bus whenever one
/// exists), which keeps the rooted height within a factor of two of
/// optimal.
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    kinds: Vec<NodeKind>,
    node_bw: Vec<Bandwidth>,
    edges: Vec<(NodeId, NodeId, Bandwidth)>,
}

impl NetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a processor (leaf) and return its id.
    pub fn add_processor(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Processor);
        self.node_bw.push(1);
        id
    }

    /// Add a bus (inner node) with the given bandwidth and return its id.
    pub fn add_bus(&mut self, bandwidth: Bandwidth) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Bus);
        self.node_bw.push(bandwidth);
        id
    }

    /// Connect `a` and `b` with a switch of the given bandwidth.
    ///
    /// Fails fast on out-of-range ids and self-loops; the remaining model
    /// constraints are checked in [`NetworkBuilder::build`].
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
    ) -> Result<(), TopologyError> {
        let n = self.kinds.len() as u32;
        if a.0 >= n {
            return Err(TopologyError::UnknownNode(a));
        }
        if b.0 >= n {
            return Err(TopologyError::UnknownNode(b));
        }
        if a == b {
            return Err(TopologyError::BadEdge(a, b));
        }
        self.edges.push((a, b, bandwidth));
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Validate and build the network.
    pub fn build(self) -> Result<Network, TopologyError> {
        let n = self.kinds.len();
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        if self.edges.len() != n - 1 {
            return Err(TopologyError::NotATree { nodes: n, edges: self.edges.len() });
        }
        if self.node_bw.contains(&0) {
            return Err(TopologyError::ZeroBandwidth);
        }

        let mut degree = vec![0usize; n];
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b, bw) in &self.edges {
            if bw == 0 {
                return Err(TopologyError::ZeroBandwidth);
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(TopologyError::BadEdge(a, b));
            }
            match (self.kinds[a.index()], self.kinds[b.index()]) {
                (NodeKind::Processor, NodeKind::Processor) => {
                    return Err(TopologyError::ProcessorToProcessor(a, b));
                }
                (NodeKind::Processor, NodeKind::Bus) => {
                    if bw != 1 {
                        return Err(TopologyError::LeafEdgeBandwidth(a));
                    }
                }
                (NodeKind::Bus, NodeKind::Processor) => {
                    if bw != 1 {
                        return Err(TopologyError::LeafEdgeBandwidth(b));
                    }
                }
                (NodeKind::Bus, NodeKind::Bus) => {}
            }
            degree[a.index()] += 1;
            degree[b.index()] += 1;
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }

        let mut has_processor = false;
        for (v, &kind) in self.kinds.iter().enumerate() {
            let id = NodeId(v as u32);
            match kind {
                NodeKind::Processor => {
                    has_processor = true;
                    // Singleton networks have a degree-0 processor.
                    if degree[v] > 1 {
                        return Err(TopologyError::ProcessorNotLeaf(id));
                    }
                }
                NodeKind::Bus => {
                    if degree[v] < 2 {
                        return Err(TopologyError::BusIsLeaf(id));
                    }
                }
            }
        }
        if !has_processor {
            return Err(TopologyError::NoProcessors);
        }

        // Connectivity: BFS from node 0 must reach everything. Together with
        // |E| = n - 1 this certifies a tree.
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        visited[0] = true;
        let mut reached = 1usize;
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v.index()] {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        if reached != n {
            return Err(TopologyError::Disconnected);
        }

        let root = choose_root(&self.kinds, &adj);
        Ok(Network::from_validated(self.kinds, self.node_bw, &self.edges, root))
    }
}

/// Pick the root: a tree center, adjusted to a bus if the center happens to
/// be a processor (only possible in trees with ≤ 3 nodes).
fn choose_root(kinds: &[NodeKind], adj: &[Vec<NodeId>]) -> NodeId {
    let n = kinds.len();
    if n == 1 {
        return NodeId(0);
    }
    // Double BFS to find one endpoint of a diameter path, then the path
    // itself; the center is its middle node.
    let far = |s: NodeId| -> (NodeId, Vec<NodeId>) {
        let mut prev = vec![NodeId(u32::MAX); n];
        let mut dist = vec![u32::MAX; n];
        dist[s.index()] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        let mut best = s;
        while let Some(v) = q.pop_front() {
            if dist[v.index()] > dist[best.index()] {
                best = v;
            }
            for &u in &adj[v.index()] {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    prev[u.index()] = v;
                    q.push_back(u);
                }
            }
        }
        (best, prev)
    };
    let (a, _) = far(NodeId(0));
    let (b, prev) = far(a);
    // Reconstruct the a–b path.
    let mut path = vec![b];
    let mut v = b;
    while v != a {
        v = prev[v.index()];
        path.push(v);
    }
    let mut center = path[path.len() / 2];
    if kinds[center.index()] == NodeKind::Processor {
        // Tiny tree: move to the adjacent bus if there is one.
        if let Some(&bus) = adj[center.index()].iter().find(|&&u| kinds[u.index()] == NodeKind::Bus)
        {
            center = bus;
        }
    }
    center
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_singleton_processor() {
        let mut b = NetworkBuilder::new();
        b.add_processor();
        let t = b.build().unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.n_processors(), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn reject_empty() {
        assert_eq!(NetworkBuilder::new().build().unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn reject_edge_count_mismatch() {
        let mut b = NetworkBuilder::new();
        b.add_processor();
        b.add_processor();
        assert!(matches!(b.build().unwrap_err(), TopologyError::NotATree { .. }));
    }

    #[test]
    fn reject_processor_to_processor() {
        let mut b = NetworkBuilder::new();
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        b.connect(p1, p2, 1).unwrap();
        assert!(matches!(b.build().unwrap_err(), TopologyError::ProcessorToProcessor(_, _)));
    }

    #[test]
    fn reject_bus_leaf() {
        let mut b = NetworkBuilder::new();
        let p = b.add_processor();
        let bus = b.add_bus(1);
        b.connect(p, bus, 1).unwrap();
        assert!(matches!(b.build().unwrap_err(), TopologyError::BusIsLeaf(_)));
    }

    #[test]
    fn reject_fat_leaf_edge() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(1);
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        b.connect(bus, p1, 2).unwrap();
        b.connect(bus, p2, 1).unwrap();
        assert!(matches!(b.build().unwrap_err(), TopologyError::LeafEdgeBandwidth(_)));
    }

    #[test]
    fn reject_zero_bandwidth() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(0);
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        b.connect(bus, p1, 1).unwrap();
        b.connect(bus, p2, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::ZeroBandwidth);
    }

    #[test]
    fn reject_self_loop_and_unknown() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(1);
        assert!(matches!(b.connect(bus, bus, 1).unwrap_err(), TopologyError::BadEdge(_, _)));
        assert!(matches!(
            b.connect(bus, NodeId(99), 1).unwrap_err(),
            TopologyError::UnknownNode(_)
        ));
    }

    #[test]
    fn reject_duplicate_edge() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(1);
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        b.connect(bus, p1, 1).unwrap();
        b.connect(p1, bus, 1).unwrap();
        b.connect(bus, p2, 1).unwrap();
        // 3 edges on 3 nodes is already not a tree.
        assert!(matches!(b.build().unwrap_err(), TopologyError::NotATree { .. }));
    }

    #[test]
    fn reject_disconnected() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(1);
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        let p3 = b.add_processor();
        b.connect(bus, p1, 1).unwrap();
        b.connect(bus, p2, 1).unwrap();
        b.connect(bus, p3, 1).unwrap();
        // Add an extra isolated pair to break connectivity while keeping the
        // edge count right.
        let bus2 = b.add_bus(1);
        let p4 = b.add_processor();
        let p5 = b.add_processor();
        b.connect(bus2, p4, 1).unwrap();
        b.connect(bus2, p5, 1).unwrap();
        // 7 nodes, 5 edges -> NotATree; make it 6 edges by linking p4 twice.
        b.connect(bus2, p3, 1).unwrap();
        let err = b.build().unwrap_err();
        assert!(
            matches!(err, TopologyError::Disconnected | TopologyError::ProcessorNotLeaf(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn root_is_center_bus_on_path() {
        // p - b1 - b2 - b3 - p : center is b2.
        let mut b = NetworkBuilder::new();
        let p1 = b.add_processor();
        let b1 = b.add_bus(1);
        let b2 = b.add_bus(5);
        let b3 = b.add_bus(1);
        let p2 = b.add_processor();
        b.connect(p1, b1, 1).unwrap();
        b.connect(b1, b2, 2).unwrap();
        b.connect(b2, b3, 2).unwrap();
        b.connect(b3, p2, 1).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.root(), b2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn root_is_bus_even_for_two_node_tree() {
        let mut b = NetworkBuilder::new();
        let bus = b.add_bus(3);
        let p1 = b.add_processor();
        let p2 = b.add_processor();
        b.connect(bus, p1, 1).unwrap();
        b.connect(bus, p2, 1).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.root(), bus);
    }
}
