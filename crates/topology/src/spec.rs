//! Portable, serde-friendly description of a network.
//!
//! [`crate::Network`] carries derived indexes (orders, LCA tables) that are
//! wasteful and fragile to serialize; [`NetworkSpec`] stores only the
//! defining data (node kinds, bandwidths, edge list) and re-validates on
//! load.

use crate::builder::NetworkBuilder;
use crate::error::TopologyError;
use crate::ids::{Bandwidth, NodeId};
use crate::tree::{Network, NodeKind};
use serde::{Deserialize, Serialize};

/// Serializable description of a hierarchical bus network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Kind of each node, by id.
    pub kinds: Vec<NodeKind>,
    /// Bandwidth of each node (1 for processors).
    pub node_bandwidths: Vec<Bandwidth>,
    /// Undirected edges `(a, b, bandwidth)`.
    pub edges: Vec<(u32, u32, Bandwidth)>,
}

impl NetworkSpec {
    /// Capture the defining data of `net`.
    pub fn from_network(net: &Network) -> Self {
        NetworkSpec {
            kinds: net.nodes().map(|v| net.kind(v)).collect(),
            node_bandwidths: net.nodes().map(|v| net.node_bandwidth(v)).collect(),
            edges: net
                .edges()
                .map(|e| {
                    let (c, p) = net.edge_endpoints(e);
                    (p.0, c.0, net.edge_bandwidth(e))
                })
                .collect(),
        }
    }

    /// Rebuild (and re-validate) the network.
    pub fn build(&self) -> Result<Network, TopologyError> {
        let mut b = NetworkBuilder::new();
        for (i, &kind) in self.kinds.iter().enumerate() {
            match kind {
                NodeKind::Processor => {
                    b.add_processor();
                }
                NodeKind::Bus => {
                    b.add_bus(*self.node_bandwidths.get(i).unwrap_or(&1));
                }
            }
        }
        for &(a, bnode, bw) in &self.edges {
            b.connect(NodeId(a), NodeId(bnode), bw)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{balanced, BandwidthProfile};

    #[test]
    fn roundtrip_preserves_structure() {
        let t = balanced(3, 2, BandwidthProfile::FatTree { base: 2, cap: 8 });
        let spec = NetworkSpec::from_network(&t);
        let t2 = spec.build().unwrap();
        assert_eq!(t.n_nodes(), t2.n_nodes());
        for v in t.nodes() {
            assert_eq!(t.kind(v), t2.kind(v));
            assert_eq!(t.node_bandwidth(v), t2.node_bandwidth(v));
            assert_eq!(t.parent(v), t2.parent(v), "same root choice on rebuild");
        }
        assert_eq!(spec, NetworkSpec::from_network(&t2));
    }

    #[test]
    fn spec_rejects_invalid() {
        let spec = NetworkSpec {
            kinds: vec![NodeKind::Processor, NodeKind::Processor],
            node_bandwidths: vec![1, 1],
            edges: vec![(0, 1, 1)],
        };
        assert!(spec.build().is_err());
    }
}
