//! Per-bus capacity overlays: degraded and dead buses.
//!
//! A [`CapacityOverlay`] records, per node, a *divisor* applied to the
//! bus bandwidth `b(B)` and a *down* flag. It is the shared currency of
//! the fault subsystem: the load model normalizes congestion by the
//! effective bandwidth (`hbn-load`'s `congestion_with`), and the
//! simulator slot kernels grant a down bus zero tokens during the
//! outage window of an epoch replay — packets are deferred and retried
//! in later slots, never dropped.
//!
//! A pristine overlay (all divisors 1, nothing down) is mathematically
//! identical to no overlay at all; every overlay-aware entry point
//! treats `None` and a pristine overlay bit-for-bit the same.
//!
//! A [`CapacityProfile`], by contrast, is *static* heterogeneity: it
//! rewrites the bus bandwidths of a freshly built [`Network`] once, at
//! build time. Because the profile mutates `b(v)` itself, every
//! consumer — slot kernels, the parallel wavefront kernel, the
//! congestion estimator, load normalization — sees the profiled
//! capacities with no per-kernel plumbing, and an overlay composes on
//! top naturally: degradation divides the *profiled* bandwidth and
//! restore returns to the *profile* capacity, not some pristine
//! uniform one.

use crate::ids::{Bandwidth, NodeId};
use crate::tree::Network;

/// A static per-bus heterogeneous capacity profile, applied once when a
/// scenario's network is built.
///
/// Profiles express the two directions the paper's hierarchy argument
/// cares about: *fat* links near the root (bandwidth grows geometrically
/// with the level, the regime where the tree behaves like a fat-tree)
/// and *degraded* leaf-adjacent buses (the commodity-edge regime where
/// the last hop is the bottleneck).
///
/// ```
/// use hbn_topology::capacity::CapacityProfile;
/// use hbn_topology::generators::{balanced, BandwidthProfile};
///
/// let mut net = balanced(2, 3, BandwidthProfile::Uniform);
/// let root_before = net.node_bandwidth(net.root());
/// CapacityProfile::FatRoot { boost: 2 }.apply(&mut net);
/// // The root is `height - 1` doublings above a leaf-adjacent bus.
/// assert_eq!(net.node_bandwidth(net.root()), root_before << (net.height() - 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityProfile {
    /// Leave the generator's bandwidths untouched.
    #[default]
    Uniform,
    /// Multiply the bandwidth of every bus on level `ℓ` by
    /// `boost^(ℓ - 1)`: leaf-adjacent buses (level 1) keep their base
    /// bandwidth and each level toward the root is `boost`× fatter.
    /// `boost ≤ 1` is the identity.
    FatRoot {
        /// Per-level multiplier (2 doubles bandwidth each level up).
        boost: u64,
    },
    /// Divide the bandwidth of every bus with at least one processor
    /// child by `divisor`, floored at 1 token per slot — the degraded
    /// commodity edge of the tree. `divisor ≤ 1` is the identity.
    DegradedLeaves {
        /// Divisor applied to leaf-adjacent bus bandwidths.
        divisor: u64,
    },
}

impl CapacityProfile {
    /// `true` when applying the profile changes nothing.
    pub fn is_uniform(&self) -> bool {
        match *self {
            CapacityProfile::Uniform => true,
            CapacityProfile::FatRoot { boost } => boost <= 1,
            CapacityProfile::DegradedLeaves { divisor } => divisor <= 1,
        }
    }

    /// Rewrite the bus bandwidths of `net` in place per the profile.
    /// Idempotent only for [`CapacityProfile::Uniform`]; apply exactly
    /// once, right after the generator builds the network.
    pub fn apply(&self, net: &mut Network) {
        match *self {
            CapacityProfile::Uniform => {}
            CapacityProfile::FatRoot { boost } => {
                if boost <= 1 {
                    return;
                }
                let buses: Vec<NodeId> = net.nodes().filter(|&v| net.is_bus(v)).collect();
                for v in buses {
                    let factor = boost.saturating_pow(net.level(v).saturating_sub(1));
                    let b = net.node_bandwidth(v).saturating_mul(factor).max(1);
                    net.set_bus_bandwidth(v, b);
                }
            }
            CapacityProfile::DegradedLeaves { divisor } => {
                if divisor <= 1 {
                    return;
                }
                let leaf_buses: Vec<NodeId> = net
                    .nodes()
                    .filter(|&v| net.is_bus(v) && net.children(v).iter().any(|&c| !net.is_bus(c)))
                    .collect();
                for v in leaf_buses {
                    let b = (net.node_bandwidth(v) / divisor).max(1);
                    net.set_bus_bandwidth(v, b);
                }
            }
        }
    }
}

impl std::fmt::Display for CapacityProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CapacityProfile::Uniform => write!(f, "uniform"),
            CapacityProfile::FatRoot { boost } => write!(f, "fat-root({boost})"),
            CapacityProfile::DegradedLeaves { divisor } => {
                write!(f, "degraded-leaves({divisor})")
            }
        }
    }
}

/// Per-node capacity modification: bandwidth divisors and down flags.
///
/// Only bus nodes are ever degraded or taken down (processors have no
/// bus bandwidth to modify); the vectors are indexed by `NodeId` over
/// *all* nodes so lookups stay O(1) without an id translation.
///
/// ```
/// use hbn_topology::generators::{balanced, BandwidthProfile};
/// use hbn_topology::{CapacityOverlay, NodeId};
///
/// let net = balanced(2, 2, BandwidthProfile::Uniform);
/// let mut overlay = CapacityOverlay::pristine(net.n_nodes());
/// assert!(overlay.is_pristine());
///
/// let bus = net.children(net.root())[0];
/// overlay.degrade(bus, 4);
/// assert_eq!(overlay.effective_node_bandwidth(&net, bus), 1.max(net.node_bandwidth(bus) / 4));
/// overlay.set_down(bus);
/// assert!(overlay.is_down(bus));
/// overlay.restore(bus);
/// assert!(overlay.is_pristine());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityOverlay {
    /// `divisor[v]` divides the bus bandwidth of `v` (1 = unmodified).
    divisor: Vec<u64>,
    /// `down[v]` — the bus is out: zero capacity during the outage
    /// window of an epoch replay.
    down: Vec<bool>,
    /// Length of the outage window in simulator slots: a down bus has
    /// zero capacity while `slot < outage_slots`, then reverts to its
    /// (possibly degraded) capacity so the replay always drains.
    outage_slots: u64,
}

impl CapacityOverlay {
    /// The identity overlay over `n_nodes` nodes: every divisor 1,
    /// nothing down.
    pub fn pristine(n_nodes: usize) -> Self {
        CapacityOverlay { divisor: vec![1; n_nodes], down: vec![false; n_nodes], outage_slots: 0 }
    }

    /// Set the outage window: a down bus has zero capacity for the
    /// first `slots` slots of each epoch replay.
    pub fn with_outage_slots(mut self, slots: u64) -> Self {
        self.outage_slots = slots;
        self
    }

    /// The outage window length, in simulator slots.
    #[inline]
    pub fn outage_slots(&self) -> u64 {
        self.outage_slots
    }

    /// Number of nodes the overlay covers.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.divisor.len()
    }

    /// `true` when the overlay modifies nothing — equivalent to passing
    /// no overlay at all.
    pub fn is_pristine(&self) -> bool {
        self.divisor.iter().all(|&d| d == 1) && !self.down.iter().any(|&d| d)
    }

    /// Degrade node `v`: its bus bandwidth is divided by `factor`
    /// (clamped below at 1 by [`CapacityOverlay::effective_node_bandwidth`]).
    /// A factor of 0 or 1 restores full capacity.
    pub fn degrade(&mut self, v: NodeId, factor: u64) {
        self.divisor[v.index()] = factor.max(1);
    }

    /// Take node `v` fully down.
    pub fn set_down(&mut self, v: NodeId) {
        self.down[v.index()] = true;
    }

    /// Clear both the down flag and the divisor of `v`.
    pub fn restore(&mut self, v: NodeId) {
        self.down[v.index()] = false;
        self.divisor[v.index()] = 1;
    }

    /// Is node `v` fully down?
    #[inline]
    pub fn is_down(&self, v: NodeId) -> bool {
        self.down[v.index()]
    }

    /// The bandwidth divisor of `v` (1 = unmodified).
    #[inline]
    pub fn divisor_of(&self, v: NodeId) -> u64 {
        self.divisor[v.index()]
    }

    /// Is node `v` degraded (divisor > 1) without being down?
    #[inline]
    pub fn is_degraded(&self, v: NodeId) -> bool {
        self.divisor[v.index()] > 1 && !self.down[v.index()]
    }

    /// Effective bus bandwidth of `v` under the overlay:
    /// `max(1, b(v) / divisor)`. A *degraded* bus never drops below
    /// bandwidth 1 — only an outage ([`CapacityOverlay::is_down`])
    /// removes capacity entirely, and only for the bounded outage
    /// window of a replay.
    #[inline]
    pub fn effective_node_bandwidth(&self, net: &Network, v: NodeId) -> Bandwidth {
        (net.node_bandwidth(v) / self.divisor[v.index()]).max(1)
    }

    /// All down nodes, ascending.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        (0..self.down.len() as u32).map(NodeId).filter(|&v| self.down[v.index()]).collect()
    }

    /// Per-node strandedness: a node is stranded when it or any strict
    /// ancestor is down — no path to the root avoids a dead bus.
    /// Stranded sets are downward-closed, so the non-stranded part of a
    /// connected tree set stays connected.
    pub fn stranded(&self, net: &Network) -> Vec<bool> {
        let mut stranded = vec![false; net.n_nodes()];
        for &v in net.preorder() {
            let own = self.down[v.index()];
            stranded[v.index()] = own || (v != net.root() && stranded[net.parent(v).index()]);
        }
        stranded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{balanced, BandwidthProfile};

    #[test]
    fn pristine_is_identity() {
        let net = balanced(3, 2, BandwidthProfile::Uniform);
        let overlay = CapacityOverlay::pristine(net.n_nodes());
        assert!(overlay.is_pristine());
        for v in net.nodes() {
            assert_eq!(overlay.effective_node_bandwidth(&net, v), net.node_bandwidth(v));
            assert!(!overlay.is_down(v));
        }
        assert!(overlay.down_nodes().is_empty());
        assert!(overlay.stranded(&net).iter().all(|&s| !s));
    }

    #[test]
    fn degrade_clamps_at_one() {
        let net = balanced(2, 2, BandwidthProfile::FatTree { base: 2, cap: 32 });
        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        let bus = net.children(net.root())[0];
        let b = net.node_bandwidth(bus);
        overlay.degrade(bus, 2);
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), (b / 2).max(1));
        overlay.degrade(bus, 10 * b.max(1));
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), 1);
        assert!(overlay.is_degraded(bus));
        overlay.restore(bus);
        assert!(overlay.is_pristine());
    }

    #[test]
    fn stranded_is_downward_closed() {
        let net = balanced(2, 3, BandwidthProfile::Uniform);
        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        let bus = net.children(net.root())[1];
        overlay.set_down(bus);
        let stranded = overlay.stranded(&net);
        for v in net.nodes() {
            let expect = net.is_ancestor(bus, v);
            assert_eq!(stranded[v.index()], expect, "{v}");
        }
        assert_eq!(overlay.down_nodes(), vec![bus]);
    }

    #[test]
    fn fat_root_boosts_geometrically_toward_the_root() {
        let net0 = balanced(2, 3, BandwidthProfile::Uniform);
        let mut net = balanced(2, 3, BandwidthProfile::Uniform);
        CapacityProfile::FatRoot { boost: 3 }.apply(&mut net);
        for v in net.nodes().filter(|&v| net.is_bus(v)) {
            let expect = net0.node_bandwidth(v) * 3u64.pow(net.level(v) - 1);
            assert_eq!(net.node_bandwidth(v), expect, "bus {v} level {}", net.level(v));
        }
        // Processors untouched.
        for &p in net.processors() {
            assert_eq!(net.node_bandwidth(p), net0.node_bandwidth(p));
        }
    }

    #[test]
    fn degraded_leaves_only_touch_leaf_adjacent_buses() {
        let net0 = balanced(2, 3, BandwidthProfile::FatTree { base: 2, cap: 64 });
        let mut net = balanced(2, 3, BandwidthProfile::FatTree { base: 2, cap: 64 });
        CapacityProfile::DegradedLeaves { divisor: 4 }.apply(&mut net);
        for v in net.nodes().filter(|&v| net.is_bus(v)) {
            let leaf_adjacent = net.children(v).iter().any(|&c| !net.is_bus(c));
            let expect = if leaf_adjacent {
                (net0.node_bandwidth(v) / 4).max(1)
            } else {
                net0.node_bandwidth(v)
            };
            assert_eq!(net.node_bandwidth(v), expect, "bus {v}");
        }
    }

    #[test]
    fn identity_profiles_change_nothing() {
        for profile in [
            CapacityProfile::Uniform,
            CapacityProfile::FatRoot { boost: 1 },
            CapacityProfile::DegradedLeaves { divisor: 0 },
        ] {
            assert!(profile.is_uniform(), "{profile}");
            let net0 = balanced(2, 2, BandwidthProfile::Uniform);
            let mut net = balanced(2, 2, BandwidthProfile::Uniform);
            profile.apply(&mut net);
            for v in net.nodes() {
                assert_eq!(net.node_bandwidth(v), net0.node_bandwidth(v));
            }
        }
        assert!(!CapacityProfile::FatRoot { boost: 2 }.is_uniform());
        assert!(!CapacityProfile::DegradedLeaves { divisor: 2 }.is_uniform());
    }

    #[test]
    fn profile_labels_are_stable() {
        assert_eq!(CapacityProfile::Uniform.to_string(), "uniform");
        assert_eq!(CapacityProfile::FatRoot { boost: 2 }.to_string(), "fat-root(2)");
        assert_eq!(
            CapacityProfile::DegradedLeaves { divisor: 4 }.to_string(),
            "degraded-leaves(4)"
        );
    }

    /// Satellite S4: overlay degradation on a profile-slowed bus floors
    /// at 1 token and never underflows.
    #[test]
    fn overlay_on_profiled_bus_floors_at_one() {
        let mut net = balanced(2, 2, BandwidthProfile::Uniform);
        CapacityProfile::DegradedLeaves { divisor: 8 }.apply(&mut net);
        let bus = *net
            .nodes()
            .filter(|&v| net.is_bus(v) && net.children(v).iter().any(|&c| !net.is_bus(c)))
            .collect::<Vec<_>>()
            .first()
            .unwrap();
        // The profile already floored this bus near 1.
        let profiled = net.node_bandwidth(bus);
        assert!(profiled >= 1);
        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        overlay.degrade(bus, 16);
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), (profiled / 16).max(1));
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), 1);
    }

    /// Satellite S4: restoring an overlay returns the bus to its
    /// *profile* capacity, not the pristine generator capacity.
    #[test]
    fn overlay_restore_returns_to_profile_capacity() {
        let pristine = balanced(2, 2, BandwidthProfile::FatTree { base: 4, cap: 256 });
        let mut net = balanced(2, 2, BandwidthProfile::FatTree { base: 4, cap: 256 });
        CapacityProfile::DegradedLeaves { divisor: 2 }.apply(&mut net);
        let bus = *net
            .nodes()
            .filter(|&v| net.is_bus(v) && net.children(v).iter().any(|&c| !net.is_bus(c)))
            .collect::<Vec<_>>()
            .first()
            .unwrap();
        let profiled = net.node_bandwidth(bus);
        assert_ne!(profiled, pristine.node_bandwidth(bus), "profile must actually slow the bus");

        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        overlay.degrade(bus, 4);
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), (profiled / 4).max(1));
        overlay.restore(bus);
        assert!(overlay.is_pristine());
        assert_eq!(overlay.effective_node_bandwidth(&net, bus), profiled);
        assert_ne!(overlay.effective_node_bandwidth(&net, bus), pristine.node_bandwidth(bus));
    }

    #[test]
    fn degrade_one_restores() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let mut overlay = CapacityOverlay::pristine(net.n_nodes());
        let bus = net.children(net.root())[0];
        overlay.degrade(bus, 0);
        overlay.degrade(bus, 1);
        assert!(overlay.is_pristine());
        assert!(!overlay.is_degraded(bus));
    }
}
