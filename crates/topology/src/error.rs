//! Error type for network construction and validation.

use crate::ids::NodeId;

/// Errors raised while building or validating a hierarchical bus network.
///
/// The model (paper, Section 1.1) requires: the graph is a tree, processors
/// are exactly the leaves, buses are exactly the inner nodes, switches
/// connecting processors to buses have bandwidth 1 (they are the slowest
/// part of the system), and all other bandwidths are at least 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The node set is empty.
    Empty,
    /// The edge count does not match `n - 1`, so the graph cannot be a tree.
    NotATree {
        /// Number of nodes.
        nodes: usize,
        /// Number of edges.
        edges: usize,
    },
    /// The graph is disconnected (contains at least two components).
    Disconnected,
    /// Two endpoints of an edge coincide or an edge is duplicated.
    BadEdge(NodeId, NodeId),
    /// A node id is out of range.
    UnknownNode(NodeId),
    /// A processor has more than one incident switch; processors must be
    /// leaves of the tree.
    ProcessorNotLeaf(NodeId),
    /// A bus has fewer than two incident switches; buses must be inner
    /// nodes of the tree.
    BusIsLeaf(NodeId),
    /// An edge directly connects two processors; switches connect a
    /// processor to a bus or two buses.
    ProcessorToProcessor(NodeId, NodeId),
    /// A bandwidth of zero was supplied; the model requires `b ≥ 1`.
    ZeroBandwidth,
    /// A processor–bus switch has bandwidth other than one; the model fixes
    /// the bandwidth of leaf switches to 1.
    LeafEdgeBandwidth(NodeId),
    /// The network has no processors at all.
    NoProcessors,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "network has no nodes"),
            TopologyError::NotATree { nodes, edges } => {
                write!(f, "{nodes} nodes and {edges} edges cannot form a tree")
            }
            TopologyError::Disconnected => write!(f, "network is disconnected"),
            TopologyError::BadEdge(a, b) => write!(f, "invalid edge between {a} and {b}"),
            TopologyError::UnknownNode(v) => write!(f, "unknown node {v}"),
            TopologyError::ProcessorNotLeaf(v) => {
                write!(f, "processor {v} is not a leaf of the tree")
            }
            TopologyError::BusIsLeaf(v) => {
                write!(f, "bus {v} is a leaf of the tree; buses must be inner nodes")
            }
            TopologyError::ProcessorToProcessor(a, b) => {
                write!(f, "edge between processors {a} and {b}; switches must touch a bus")
            }
            TopologyError::ZeroBandwidth => write!(f, "bandwidths must be at least 1"),
            TopologyError::LeafEdgeBandwidth(v) => {
                write!(f, "switch to processor {v} must have bandwidth 1")
            }
            TopologyError::NoProcessors => write!(f, "network has no processors"),
        }
    }
}

impl std::error::Error for TopologyError {}
