//! Steiner trees of terminal sets in the network tree.
//!
//! A write to object `x` broadcasts an update along the Steiner tree
//! spanning the copy set `P_x` (paper, Section 1.1). In a tree the Steiner
//! tree of a terminal set `S` is unique: it consists of every edge `e`
//! whose removal separates two terminals, equivalently every edge whose
//! child-side subtree contains at least one but not all terminals.

use crate::ids::{EdgeId, NodeId};
use crate::tree::Network;

/// Reusable buffers for repeated Steiner-tree computations.
///
/// The virtual-tree construction sorts the terminal set and collects path
/// edges; callers on hot paths (the bulk load accounting runs one Steiner
/// computation per object of a placement) hand the same scratch to every
/// call so the buffers reach a high-water capacity once and no further
/// allocation happens. The dynamic strategy's write broadcast does not
/// need this machinery at all: its terminal set is connected, so the
/// Steiner tree degenerates to the induced edge set (see
/// `hbn-dynamic`).
#[derive(Debug, Default)]
pub struct SteinerScratch {
    terminals: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl SteinerScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> SteinerScratch {
        SteinerScratch::default()
    }
}

/// Edges of the Steiner tree spanning `terminals`, computed in
/// `O(k log k + output)` time via the virtual-tree technique (sort by
/// preorder time, walk consecutive LCAs).
///
/// Returns an empty set for fewer than two terminals. Duplicate terminals
/// are allowed.
pub fn steiner_edges(net: &Network, terminals: &[NodeId]) -> Vec<EdgeId> {
    let mut scratch = SteinerScratch::new();
    steiner_edges_with(net, terminals, &mut scratch);
    std::mem::take(&mut scratch.edges)
}

/// [`steiner_edges`] into caller-provided scratch: no allocation once the
/// scratch buffers have grown to the working-set size. The returned slice
/// (sorted, deduplicated — identical to [`steiner_edges`]) borrows the
/// scratch and is valid until its next use.
pub fn steiner_edges_with<'s>(
    net: &Network,
    terminals: &[NodeId],
    scratch: &'s mut SteinerScratch,
) -> &'s [EdgeId] {
    scratch.edges.clear();
    if terminals.len() < 2 {
        return &scratch.edges;
    }
    scratch.terminals.clear();
    scratch.terminals.extend_from_slice(terminals);
    scratch.terminals.sort_unstable_by_key(|&v| net.preorder_index(v));
    scratch.terminals.dedup();
    if scratch.terminals.len() == 1 {
        return &scratch.edges;
    }
    // The Steiner tree is the union of the paths between preorder-adjacent
    // terminals plus the path closing through the overall LCA; collecting
    // path edges of consecutive pairs covers every Steiner edge at least
    // once (classic virtual tree property).
    for w in scratch.terminals.windows(2) {
        scratch.edges.extend(net.path_edges_iter(w[0], w[1]));
    }
    scratch.edges.sort_unstable();
    scratch.edges.dedup();
    &scratch.edges
}

/// Total number of edges in the Steiner tree of `terminals`; the write
/// broadcast for an object with copy set `P_x` loads exactly these edges.
pub fn steiner_size(net: &Network, terminals: &[NodeId]) -> usize {
    steiner_edges(net, terminals).len()
}

/// Marks each edge of the Steiner tree of `terminals` in a reusable
/// per-edge buffer (indexed by `EdgeId::index`), adding `weight` to marked
/// entries. Used by the load accounting, which processes many objects and
/// wants to avoid repeated allocation.
pub fn add_steiner_load(net: &Network, terminals: &[NodeId], weight: u64, out: &mut [u64]) {
    let mut scratch = SteinerScratch::new();
    add_steiner_load_with(net, terminals, weight, &mut scratch, out);
}

/// [`add_steiner_load`] with caller-provided scratch: fully allocation-free
/// once the scratch has reached its high-water capacity.
pub fn add_steiner_load_with(
    net: &Network,
    terminals: &[NodeId],
    weight: u64,
    scratch: &mut SteinerScratch,
    out: &mut [u64],
) {
    for &e in steiner_edges_with(net, terminals, scratch) {
        out[e.index()] += weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// bus0 — bus1(p3,p4), bus2(p5,p6,p7)
    fn two_level() -> Network {
        let mut b = NetworkBuilder::new();
        let r = b.add_bus(4);
        let b1 = b.add_bus(2);
        let b2 = b.add_bus(2);
        let ps: Vec<_> = (0..5).map(|_| b.add_processor()).collect();
        b.connect(r, b1, 2).unwrap();
        b.connect(r, b2, 3).unwrap();
        b.connect(b1, ps[0], 1).unwrap();
        b.connect(b1, ps[1], 1).unwrap();
        b.connect(b2, ps[2], 1).unwrap();
        b.connect(b2, ps[3], 1).unwrap();
        b.connect(b2, ps[4], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        let t = two_level();
        assert!(steiner_edges(&t, &[]).is_empty());
        assert!(steiner_edges(&t, &[NodeId(3)]).is_empty());
        assert!(steiner_edges(&t, &[NodeId(3), NodeId(3)]).is_empty());
    }

    #[test]
    fn pair_is_path() {
        let t = two_level();
        let s = steiner_edges(&t, &[NodeId(3), NodeId(5)]);
        let mut p = t.path_edges(NodeId(3), NodeId(5));
        p.sort_unstable();
        assert_eq!(s, p);
    }

    #[test]
    fn three_terminals_in_one_subtree() {
        let t = two_level();
        let s = steiner_edges(&t, &[NodeId(5), NodeId(6), NodeId(7)]);
        // Spans bus2 and its three processors: edges e5, e6, e7 only.
        assert_eq!(s, vec![EdgeId(5), EdgeId(6), EdgeId(7)]);
    }

    #[test]
    fn spanning_terminals() {
        let t = two_level();
        let s = steiner_edges(&t, &[NodeId(3), NodeId(4), NodeId(7)]);
        // Paths 3-4 (via bus1) and up through the root to 7.
        assert_eq!(s, vec![EdgeId(1), EdgeId(2), EdgeId(3), EdgeId(4), EdgeId(7)]);
    }

    #[test]
    fn steiner_against_separation_definition() {
        // Cross-check the virtual-tree construction against the separation
        // definition on a brute-force enumeration of terminal subsets.
        let t = two_level();
        let procs = t.processors().to_vec();
        for mask in 0u32..(1 << procs.len()) {
            let terminals: Vec<NodeId> = procs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| p)
                .collect();
            let got = steiner_edges(&t, &terminals);
            let want: Vec<EdgeId> = t
                .edges()
                .filter(|&e| {
                    let inside = terminals.iter().filter(|&&p| t.is_ancestor(e.child(), p)).count();
                    inside > 0 && inside < terminals.len()
                })
                .collect();
            assert_eq!(got, want, "mask {mask:#b}");
        }
    }

    #[test]
    fn scratch_variant_matches_allocating_api_on_all_subsets() {
        let t = two_level();
        let procs = t.processors().to_vec();
        let mut scratch = SteinerScratch::new();
        for mask in 0u32..(1 << procs.len()) {
            let terminals: Vec<NodeId> = procs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| p)
                .collect();
            let want = steiner_edges(&t, &terminals);
            // The same scratch is reused across every subset.
            assert_eq!(steiner_edges_with(&t, &terminals, &mut scratch), want, "mask {mask:#b}");
        }
    }

    #[test]
    fn add_steiner_load_with_reuses_scratch() {
        let t = two_level();
        let mut buf = vec![0u64; t.n_nodes()];
        let mut scratch = SteinerScratch::new();
        add_steiner_load_with(&t, &[NodeId(3), NodeId(7)], 4, &mut scratch, &mut buf);
        add_steiner_load_with(&t, &[NodeId(3), NodeId(4)], 1, &mut scratch, &mut buf);
        assert_eq!(buf[3], 5);
        assert_eq!(buf[4], 1);
        assert_eq!(buf[7], 4);
    }

    #[test]
    fn add_steiner_load_accumulates() {
        let t = two_level();
        let mut buf = vec![0u64; t.n_nodes()];
        add_steiner_load(&t, &[NodeId(3), NodeId(4)], 5, &mut buf);
        add_steiner_load(&t, &[NodeId(3), NodeId(4)], 2, &mut buf);
        assert_eq!(buf[3], 7);
        assert_eq!(buf[4], 7);
        assert_eq!(buf[1], 0, "edge above bus1 is not in the Steiner tree");
    }
}
