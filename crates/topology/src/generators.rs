//! Parameterised network generators used by tests, examples and the
//! experiment harness.
//!
//! All generators are deterministic given their inputs (and a seeded RNG
//! for the random families), so every experiment in EXPERIMENTS.md can be
//! regenerated bit-for-bit.

use crate::builder::NetworkBuilder;
use crate::ids::{Bandwidth, NodeId};
use crate::tree::Network;
use rand::Rng;

/// How bus and bus-to-bus switch bandwidths are assigned by the generators.
///
/// Processor switches always get bandwidth 1, as the model requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthProfile {
    /// Every bus and switch has bandwidth 1 (the congestion then counts raw
    /// loads).
    Uniform,
    /// Bandwidth grows with distance from the leaves: a bus at height `h`
    /// above the deepest leaf gets `base^h`, capped at `cap`. This mimics
    /// fat-tree style provisioning where upper-level rings are faster.
    FatTree {
        /// Multiplicative growth per level.
        base: u64,
        /// Upper bound on any assigned bandwidth.
        cap: u64,
    },
    /// Constant bandwidth `c` on all buses and bus-to-bus switches.
    Constant(u64),
}

impl BandwidthProfile {
    /// Bandwidth for a bus whose subtree height above the leaves is `h ≥ 1`.
    pub fn bus_bandwidth(&self, h: u32) -> Bandwidth {
        match *self {
            BandwidthProfile::Uniform => 1,
            BandwidthProfile::FatTree { base, cap } => {
                let mut bw: u64 = 1;
                for _ in 0..h {
                    bw = bw.saturating_mul(base);
                    if bw >= cap {
                        return cap;
                    }
                }
                bw.min(cap)
            }
            BandwidthProfile::Constant(c) => c,
        }
    }

    /// Bandwidth for a bus-to-bus switch whose lower endpoint has subtree
    /// height `h ≥ 1`.
    pub fn switch_bandwidth(&self, h: u32) -> Bandwidth {
        self.bus_bandwidth(h)
    }
}

/// The star network of the NP-hardness proof (Theorem 2.1): one bus with
/// `n_processors` leaves. `bus_bandwidth` is made "sufficiently large" by
/// the caller when reproducing the reduction (the proof wants edge loads to
/// dominate).
pub fn star(n_processors: usize, bus_bandwidth: Bandwidth) -> Network {
    assert!(n_processors >= 2, "a bus needs at least two attached switches");
    let mut b = NetworkBuilder::new();
    let bus = b.add_bus(bus_bandwidth);
    for _ in 0..n_processors {
        let p = b.add_processor();
        b.connect(bus, p, 1).expect("valid ids");
    }
    b.build().expect("star is a valid network")
}

/// A perfectly balanced tree of buses with `branching ≥ 2` children per bus
/// and `height ≥ 1` levels of buses; every lowest-level bus gets
/// `branching` processors.
///
/// The resulting network has `branching^height` processors.
pub fn balanced(branching: usize, height: u32, profile: BandwidthProfile) -> Network {
    assert!(branching >= 2, "branching must be at least 2");
    assert!(height >= 1, "height must be at least 1");
    let mut b = NetworkBuilder::new();
    // Bus levels are numbered by height above the processors: the root has
    // `height`, the lowest buses have 1.
    let root = b.add_bus(profile.bus_bandwidth(height));
    let mut frontier = vec![(root, height)];
    while let Some((bus, h)) = frontier.pop() {
        for _ in 0..branching {
            if h == 1 {
                let p = b.add_processor();
                b.connect(bus, p, 1).expect("valid ids");
            } else {
                let child = b.add_bus(profile.bus_bandwidth(h - 1));
                b.connect(bus, child, profile.switch_bandwidth(h - 1)).expect("valid ids");
                frontier.push((child, h - 1));
            }
        }
    }
    b.build().expect("balanced tree is a valid network")
}

/// A caterpillar: a path of `spine ≥ 1` buses, each with `legs ≥ 1`
/// processors (the two spine ends get one extra processor so no bus is a
/// leaf).
pub fn caterpillar(spine: usize, legs: usize, profile: BandwidthProfile) -> Network {
    assert!(spine >= 1 && legs >= 1);
    let mut b = NetworkBuilder::new();
    let buses: Vec<NodeId> = (0..spine).map(|_| b.add_bus(profile.bus_bandwidth(1))).collect();
    for w in buses.windows(2) {
        b.connect(w[0], w[1], profile.switch_bandwidth(1)).expect("valid ids");
    }
    for (i, &bus) in buses.iter().enumerate() {
        let mut count = legs;
        // End buses of a single-bus or path caterpillar need degree ≥ 2.
        let degree_from_spine = usize::from(i > 0) + usize::from(i + 1 < spine);
        if degree_from_spine + count < 2 {
            count = 2 - degree_from_spine;
        }
        for _ in 0..count {
            let p = b.add_processor();
            b.connect(bus, p, 1).expect("valid ids");
        }
    }
    b.build().expect("caterpillar is a valid network")
}

/// A random hierarchical bus network with exactly `n_buses ≥ 1` buses and
/// `n_processors ≥ 2` processors.
///
/// The bus skeleton is a random recursive tree (each new bus attaches to a
/// uniformly random earlier bus); processors attach to uniformly random
/// buses; buses left with degree < 2 receive an extra processor each, so the
/// processor count may exceed `n_processors` on adversarial draws — the
/// generator instead reserves enough processors up front to avoid that.
pub fn random_network<R: Rng>(
    n_buses: usize,
    n_processors: usize,
    profile: BandwidthProfile,
    rng: &mut R,
) -> Network {
    assert!(n_buses >= 1);
    assert!(n_processors >= 2, "need at least two processors");
    let mut b = NetworkBuilder::new();
    let mut buses = Vec::with_capacity(n_buses);
    // Heights above leaves are unknown until the shape is fixed; assign
    // bandwidths afterwards would require rebuilding, so draw from the
    // profile with a synthetic height based on creation order (deeper in
    // the recursive tree ≈ later). This is deliberate roughness: random
    // networks are used for correctness experiments where only the model
    // constraints matter.
    for i in 0..n_buses {
        let h = (n_buses - i).ilog2().max(1);
        buses.push(b.add_bus(profile.bus_bandwidth(h)));
    }
    let mut degree = vec![0usize; n_buses];
    for i in 1..n_buses {
        let j = rng.gen_range(0..i);
        let h = (n_buses - i).ilog2().max(1);
        b.connect(buses[i], buses[j], profile.switch_bandwidth(h)).expect("valid ids");
        degree[i] += 1;
        degree[j] += 1;
    }
    // First make every bus a non-leaf, then distribute the remaining
    // processors uniformly.
    let needy: Vec<usize> = (0..n_buses).filter(|&i| degree[i] < 2).collect();
    let deficit: usize = needy.iter().map(|&i| 2 - degree[i]).sum();
    assert!(
        n_processors >= deficit,
        "need at least {deficit} processors to keep every bus an inner node"
    );
    let mut remaining = n_processors;
    for &i in &needy {
        for _ in degree[i]..2 {
            let p = b.add_processor();
            b.connect(buses[i], p, 1).expect("valid ids");
            remaining -= 1;
        }
    }
    for _ in 0..remaining {
        let i = rng.gen_range(0..n_buses);
        let p = b.add_processor();
        b.connect(buses[i], p, 1).expect("valid ids");
    }
    b.build().expect("random network is valid by construction")
}

/// A path of buses of length `n_buses` with one processor at each end —
/// the deepest trees for a given node count, used to stress `height(T)`
/// terms in the bounds.
pub fn bus_path(n_buses: usize, profile: BandwidthProfile) -> Network {
    assert!(n_buses >= 1);
    let mut b = NetworkBuilder::new();
    let buses: Vec<NodeId> = (0..n_buses).map(|_| b.add_bus(profile.bus_bandwidth(1))).collect();
    for w in buses.windows(2) {
        b.connect(w[0], w[1], profile.switch_bandwidth(1)).expect("valid ids");
    }
    let p1 = b.add_processor();
    let p2 = b.add_processor();
    b.connect(buses[0], p1, 1).expect("valid ids");
    b.connect(buses[n_buses - 1], p2, 1).expect("valid ids");
    b.build().expect("bus path is a valid network")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_shape() {
        let t = star(4, 100);
        assert_eq!(t.n_processors(), 4);
        assert_eq!(t.n_buses(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.max_degree(), 4);
        assert_eq!(t.node_bandwidth(t.root()), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_shape() {
        let t = balanced(3, 2, BandwidthProfile::Uniform);
        assert_eq!(t.n_processors(), 9);
        assert_eq!(t.n_buses(), 1 + 3);
        assert_eq!(t.height(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_fat_tree_bandwidths() {
        let profile = BandwidthProfile::FatTree { base: 4, cap: 64 };
        let t = balanced(2, 4, profile);
        // Root has height 4 above leaves: 4^4 = 256 capped at 64.
        assert_eq!(t.node_bandwidth(t.root()), 64);
        // Leaf switches stay at 1.
        for &p in t.processors() {
            assert_eq!(t.edge_bandwidth(crate::EdgeId::from(p)), 1);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(5, 2, BandwidthProfile::Uniform);
        assert_eq!(t.n_buses(), 5);
        assert_eq!(t.n_processors(), 10);
        t.check_invariants().unwrap();

        let t = caterpillar(1, 1, BandwidthProfile::Uniform);
        // A single bus with one leg gets padded to two processors.
        assert_eq!(t.n_processors(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_network_valid_across_seeds() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = random_network(8, 20, BandwidthProfile::Uniform, &mut rng);
            assert_eq!(t.n_buses(), 8);
            assert_eq!(t.n_processors(), 20);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn random_network_is_seed_deterministic() {
        let a = {
            let mut rng = StdRng::seed_from_u64(42);
            random_network(6, 15, BandwidthProfile::Uniform, &mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(42);
            random_network(6, 15, BandwidthProfile::Uniform, &mut rng)
        };
        assert_eq!(a.n_nodes(), b.n_nodes());
        for v in a.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
            assert_eq!(a.kind(v), b.kind(v));
        }
    }

    #[test]
    fn bus_path_is_deep() {
        let t = bus_path(10, BandwidthProfile::Uniform);
        assert_eq!(t.n_buses(), 10);
        assert_eq!(t.n_processors(), 2);
        // Rooted at the center, so height is about half the path length.
        assert!(t.height() >= 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn fat_tree_profile_growth() {
        let p = BandwidthProfile::FatTree { base: 2, cap: 16 };
        assert_eq!(p.bus_bandwidth(1), 2);
        assert_eq!(p.bus_bandwidth(3), 8);
        assert_eq!(p.bus_bandwidth(10), 16);
        assert_eq!(BandwidthProfile::Uniform.bus_bandwidth(7), 1);
        assert_eq!(BandwidthProfile::Constant(5).bus_bandwidth(2), 5);
    }
}
