//! SCI-style hierarchical ring networks and their reduction to hierarchical
//! bus networks (Figures 1 and 2 of the paper).
//!
//! Large SCI (Scalable Coherent Interface) installations are built from
//! small unidirectional ringlets joined by switches. Because every SCI
//! transaction is a request–response pair, a transaction between two nodes
//! of a ringlet `r` behaves like a single packet that travels all the way
//! around `r`: it loads *every* segment of the ring once, regardless of
//! where source and destination sit. Congestion-wise a ringlet is therefore
//! equivalent to a bus of the same bandwidth, and a tree of ringlets is
//! equivalent to a hierarchical bus network. This module implements both
//! sides of that equivalence and is exercised by experiment `EXP-SCI`.

use crate::builder::NetworkBuilder;
use crate::error::TopologyError;
use crate::ids::{Bandwidth, NodeId};
use crate::tree::Network;
use serde::{Deserialize, Serialize};

/// Index of a ringlet in a [`RingNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingId(pub u32);

impl RingId {
    /// The ring index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A station on a ringlet: either a processor or a switch leading to a
/// child ringlet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingSlot {
    /// A processor attached to this ringlet.
    Processor,
    /// A switch to a child ringlet, with the switch bandwidth.
    Switch {
        /// The child ringlet reached through this switch.
        child: RingId,
        /// Bandwidth of the switch.
        bandwidth: Bandwidth,
    },
}

/// One unidirectional SCI ringlet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ringlet {
    /// Aggregate bandwidth of the ring interconnect.
    pub bandwidth: Bandwidth,
    /// Stations around the ring, in ring order.
    pub slots: Vec<RingSlot>,
}

/// A tree-like connected network of SCI ringlets (Figure 1 of the paper):
/// ringlet 0 is the top ring; switches connect parent rings to child rings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingNetwork {
    rings: Vec<Ringlet>,
}

/// Result of converting a [`RingNetwork`] into a [`Network`]: the bus tree
/// plus the correspondence between rings/ring-processors and bus-tree nodes.
#[derive(Debug, Clone)]
pub struct RingConversion {
    /// The equivalent hierarchical bus network (Figure 2).
    pub network: Network,
    /// `bus_of_ring[r]` is the bus representing ringlet `r`.
    pub bus_of_ring: Vec<NodeId>,
    /// For each ring, the processor node created for each `Processor` slot
    /// (indexed by position among that ring's processor slots).
    pub processors_of_ring: Vec<Vec<NodeId>>,
}

impl RingNetwork {
    /// Build a ring network from ringlets; ring 0 must be the root and
    /// every other ring must be referenced by exactly one switch slot.
    pub fn new(rings: Vec<Ringlet>) -> Self {
        RingNetwork { rings }
    }

    /// Number of ringlets.
    pub fn n_rings(&self) -> usize {
        self.rings.len()
    }

    /// The ringlets in id order.
    pub fn rings(&self) -> &[Ringlet] {
        &self.rings
    }

    /// Total processors across all ringlets.
    pub fn n_processors(&self) -> usize {
        self.rings
            .iter()
            .map(|r| r.slots.iter().filter(|s| matches!(s, RingSlot::Processor)).count())
            .sum()
    }

    /// Per-segment loads on ringlet `r` for `transactions` request–response
    /// transactions that touch the ring.
    ///
    /// Each transaction occupies every segment of the unidirectional ring
    /// exactly once (the request travels part of the way, the response the
    /// rest), so every one of the `slots.len()` segments carries exactly
    /// `transactions` — which is why a ringlet is modelled as a bus whose
    /// load equals the number of transactions crossing it.
    pub fn segment_loads(&self, r: RingId, transactions: u64) -> Vec<u64> {
        vec![transactions; self.rings[r.index()].slots.len()]
    }

    /// Convert into the equivalent hierarchical bus network (Figure 1 →
    /// Figure 2): every ringlet becomes a bus of the same bandwidth, every
    /// inter-ring switch becomes a tree edge of the same bandwidth, and
    /// every processor slot becomes a leaf processor behind a bandwidth-1
    /// switch.
    pub fn to_bus_network(&self) -> Result<RingConversion, TopologyError> {
        let mut b = NetworkBuilder::new();
        let bus_of_ring: Vec<NodeId> = self.rings.iter().map(|r| b.add_bus(r.bandwidth)).collect();
        let mut processors_of_ring: Vec<Vec<NodeId>> = vec![Vec::new(); self.rings.len()];
        for (ri, ring) in self.rings.iter().enumerate() {
            for slot in &ring.slots {
                match *slot {
                    RingSlot::Processor => {
                        let p = b.add_processor();
                        b.connect(bus_of_ring[ri], p, 1)?;
                        processors_of_ring[ri].push(p);
                    }
                    RingSlot::Switch { child, bandwidth } => {
                        if child.index() >= self.rings.len() {
                            return Err(TopologyError::UnknownNode(NodeId(child.0)));
                        }
                        b.connect(bus_of_ring[ri], bus_of_ring[child.index()], bandwidth)?;
                    }
                }
            }
        }
        let network = b.build()?;
        Ok(RingConversion { network, bus_of_ring, processors_of_ring })
    }
}

/// Convenience constructor: the "ring of rings" of Figure 1 — a top ring
/// with `n_children` child rings, each carrying `procs_per_ring`
/// processors.
pub fn ring_of_rings(
    n_children: usize,
    procs_per_ring: usize,
    ring_bandwidth: Bandwidth,
    switch_bandwidth: Bandwidth,
) -> RingNetwork {
    assert!(n_children >= 2 && procs_per_ring >= 1);
    let mut rings = Vec::with_capacity(n_children + 1);
    let top = Ringlet {
        bandwidth: ring_bandwidth,
        slots: (0..n_children)
            .map(|i| RingSlot::Switch { child: RingId(1 + i as u32), bandwidth: switch_bandwidth })
            .collect(),
    };
    rings.push(top);
    for _ in 0..n_children {
        rings.push(Ringlet {
            bandwidth: ring_bandwidth,
            slots: (0..procs_per_ring).map(|_| RingSlot::Processor).collect(),
        });
    }
    RingNetwork::new(rings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    fn figure_1_to_figure_2() {
        // Figure 1: a top ring joining two child rings via switches.
        let net = ring_of_rings(2, 3, 16, 4);
        assert_eq!(net.n_rings(), 3);
        assert_eq!(net.n_processors(), 6);
        let conv = net.to_bus_network().unwrap();
        let t = &conv.network;
        assert_eq!(t.n_buses(), 3);
        assert_eq!(t.n_processors(), 6);
        // The top ring becomes a bus adjacent to the two child buses.
        let top = conv.bus_of_ring[0];
        assert!(t.is_bus(top));
        assert_eq!(t.node_bandwidth(top), 16);
        for ri in 1..3 {
            let bus = conv.bus_of_ring[ri];
            let on_path: Vec<_> = t.path_nodes(top, bus);
            assert_eq!(on_path.len(), 2, "child ring buses are adjacent to the top bus");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn processors_map_to_leaves() {
        let net = ring_of_rings(3, 2, 8, 2);
        let conv = net.to_bus_network().unwrap();
        for procs in &conv.processors_of_ring {
            for &p in procs {
                assert_eq!(conv.network.kind(p), NodeKind::Processor);
            }
        }
        // Child rings carry all the processors.
        assert!(conv.processors_of_ring[0].is_empty());
        assert_eq!(conv.processors_of_ring[1].len(), 2);
    }

    #[test]
    fn segment_loads_are_uniform() {
        // The justification for the bus model: a transaction loads every
        // ring segment exactly once.
        let net = ring_of_rings(2, 4, 8, 2);
        let loads = net.segment_loads(RingId(1), 10);
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().all(|&l| l == 10));
    }

    #[test]
    fn reject_dangling_switch() {
        let rings = vec![Ringlet {
            bandwidth: 4,
            slots: vec![RingSlot::Processor, RingSlot::Switch { child: RingId(5), bandwidth: 1 }],
        }];
        let net = RingNetwork::new(rings);
        assert!(net.to_bus_network().is_err());
    }

    #[test]
    fn three_level_hierarchy() {
        // top ring -> 2 mid rings -> 2 leaf rings each with 2 processors.
        let mut rings = vec![Ringlet {
            bandwidth: 32,
            slots: vec![
                RingSlot::Switch { child: RingId(1), bandwidth: 8 },
                RingSlot::Switch { child: RingId(2), bandwidth: 8 },
            ],
        }];
        for mid in 0..2u32 {
            let first_leaf = 3 + mid * 2;
            rings.push(Ringlet {
                bandwidth: 16,
                slots: vec![
                    RingSlot::Switch { child: RingId(first_leaf), bandwidth: 4 },
                    RingSlot::Switch { child: RingId(first_leaf + 1), bandwidth: 4 },
                ],
            });
        }
        for _ in 0..4 {
            rings.push(Ringlet {
                bandwidth: 8,
                slots: vec![RingSlot::Processor, RingSlot::Processor],
            });
        }
        let net = RingNetwork::new(rings);
        let conv = net.to_bus_network().unwrap();
        assert_eq!(conv.network.n_buses(), 7);
        assert_eq!(conv.network.n_processors(), 8);
        assert_eq!(conv.network.height(), 3);
        conv.network.check_invariants().unwrap();
    }
}
