//! Property tests for the topology substrate: structural queries agree
//! with naive reference implementations on arbitrary random networks.

use hbn_topology::generators::{random_network, BandwidthProfile};
use hbn_topology::{Network, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_net() -> impl Strategy<Value = Network> {
    (1usize..8, 2usize..16, any::<u64>()).prop_map(|(buses, procs, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_network(buses, procs.max(buses * 2), BandwidthProfile::Uniform, &mut rng)
    })
}

/// Naive LCA: climb both nodes to the root and intersect ancestor chains.
fn naive_lca(net: &Network, a: NodeId, b: NodeId) -> NodeId {
    let chain = |mut v: NodeId| {
        let mut out = vec![v];
        while v != net.root() {
            v = net.parent(v);
            out.push(v);
        }
        out
    };
    let ca = chain(a);
    let cb: std::collections::HashSet<NodeId> = chain(b).into_iter().collect();
    *ca.iter().find(|v| cb.contains(v)).expect("root is always common")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lca_matches_naive(net in arb_net(), xa in any::<u32>(), xb in any::<u32>()) {
        let a = NodeId(xa % net.n_nodes() as u32);
        let b = NodeId(xb % net.n_nodes() as u32);
        prop_assert_eq!(net.lca(a, b), naive_lca(&net, a, b));
    }

    #[test]
    fn path_edges_match_distance(net in arb_net(), xa in any::<u32>(), xb in any::<u32>()) {
        let a = NodeId(xa % net.n_nodes() as u32);
        let b = NodeId(xb % net.n_nodes() as u32);
        let edges = net.path_edges(a, b);
        prop_assert_eq!(edges.len() as u32, net.distance(a, b));
        // Nodes on the path are distinct and consistent with the edges.
        let nodes = net.path_nodes(a, b);
        prop_assert_eq!(nodes.len(), edges.len() + 1);
        prop_assert_eq!(nodes.first().copied(), Some(a));
        prop_assert_eq!(nodes.last().copied(), Some(b));
    }

    #[test]
    fn step_towards_decreases_distance(net in arb_net(), xa in any::<u32>(), xb in any::<u32>()) {
        let a = NodeId(xa % net.n_nodes() as u32);
        let b = NodeId(xb % net.n_nodes() as u32);
        prop_assume!(a != b);
        let s = net.step_towards(a, b);
        prop_assert_eq!(net.distance(s, b) + 1, net.distance(a, b));
    }

    #[test]
    fn subtree_sizes_sum(net in arb_net()) {
        // Each node's subtree size is 1 plus its children's sizes.
        for v in net.nodes() {
            let kids: usize = net.children(v).iter().map(|&c| net.subtree_size(c)).sum();
            prop_assert_eq!(net.subtree_size(v), kids + 1);
        }
        prop_assert_eq!(net.subtree_size(net.root()), net.n_nodes());
    }

    #[test]
    fn steiner_matches_separation_definition(
        net in arb_net(),
        picks in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let terminals: Vec<NodeId> = picks
            .iter()
            .map(|&i| net.processors()[i as usize % net.n_processors()])
            .collect();
        let got = hbn_topology::steiner::steiner_edges(&net, &terminals);
        let mut uniq = terminals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let want: Vec<_> = net
            .edges()
            .filter(|&e| {
                let below = uniq.iter().filter(|&&t| net.is_ancestor(e.child(), t)).count();
                below > 0 && below < uniq.len()
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn levels_complement_depths(net in arb_net()) {
        for v in net.nodes() {
            prop_assert_eq!(net.level(v) + net.depth(v), net.height());
        }
    }

    #[test]
    fn spec_roundtrips(net in arb_net()) {
        let spec = hbn_topology::NetworkSpec::from_network(&net);
        let rebuilt = spec.build().unwrap();
        prop_assert_eq!(net.n_nodes(), rebuilt.n_nodes());
        for v in net.nodes() {
            prop_assert_eq!(net.kind(v), rebuilt.kind(v));
            prop_assert_eq!(net.node_bandwidth(v), rebuilt.node_bandwidth(v));
            prop_assert_eq!(net.parent(v), rebuilt.parent(v));
        }
    }
}
