//! Service-layer robustness: admission control, deadlines, graceful
//! degradation with hysteresis, and supervised crash recovery that is
//! bit-for-bit indistinguishable from an unbroken run.
//!
//! The deterministic tests disable the watchdog cadence (a very long
//! poll) and drive every supervision step explicitly through
//! `checkpoint_now` / `recover_now`, so nothing here depends on timing.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use hbn_dynamic::OnlineRequest;
use hbn_scenario::{FaultPlan, ScenarioSpec, Session, TopologyFamily};
use hbn_server::{Rejected, ServeMode, Server, ServerConfig};
use hbn_topology::NodeId;
use hbn_workload::{ObjectId, PhaseSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const OBJECTS: usize = 8;

fn tenant_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::builder(
        name,
        TopologyFamily::Balanced { branching: 3, height: 2 },
        PhaseSchedule::new(OBJECTS, vec![]),
    )
    .threshold(2)
    .seed(7)
    .build()
}

/// A spec whose fault plan takes a bus down across epochs 2..4.
fn faulty_spec(name: &str) -> ScenarioSpec {
    let net = TopologyFamily::Balanced { branching: 3, height: 2 }.build();
    let bus = *net.children(net.root()).iter().find(|&&v| net.is_bus(v)).unwrap();
    ScenarioSpec::builder(
        name,
        TopologyFamily::Balanced { branching: 3, height: 2 },
        PhaseSchedule::new(OBJECTS, vec![]),
    )
    .threshold(2)
    .seed(7)
    .faults(FaultPlan::single_outage(bus, 2, 4))
    .build()
}

fn batch(procs: &[NodeId], seed: u64, len: usize) -> Vec<OnlineRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| OnlineRequest {
            processor: procs[rng.gen_range(0..procs.len())],
            object: ObjectId(rng.gen_range(0..OBJECTS as u32)),
            is_write: rng.gen_bool(0.25),
        })
        .collect()
}

/// A config whose watchdog never fires on its own.
fn manual_cfg(dir: &str) -> ServerConfig {
    let mut cfg = ServerConfig::new(tmp(dir));
    cfg.watchdog_poll = Duration::from_secs(3600);
    cfg
}

/// Inject a crash and wait until the worker thread is observably dead,
/// so a following `recover_now` cannot race the panic unwind.
fn crash_worker(server: &Server, tenant: &str) {
    server.inject_crash(tenant).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.worker_alive(tenant).unwrap() {
        assert!(
            std::time::Instant::now() < deadline,
            "worker '{tenant}' still alive 30s after an injected crash \
             (metrics: {:?})",
            server.metrics(tenant)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// `Ticket::wait` with a generous timeout that fails loudly (with the
/// tenant's state) instead of deadlocking the suite on a bug.
fn wait_on(server: &Server, tenant: &str, ticket: hbn_server::Ticket) -> hbn_server::EpochOutcome {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut t = ticket;
    loop {
        match t.try_wait() {
            Ok(r) => return r.unwrap(),
            Err(back) => {
                if std::time::Instant::now() > deadline {
                    panic!(
                        "ticket unresolved after 30s: tenant {tenant}, depth {:?}, alive {:?}, metrics {:?}",
                        server.queue_depth(tenant),
                        server.worker_alive(tenant),
                        server.metrics(tenant)
                    );
                }
                std::thread::sleep(Duration::from_millis(1));
                t = back;
            }
        }
    }
}

#[test]
fn admission_rejects_past_capacity_and_recovery_serves_the_backlog() {
    let mut cfg = manual_cfg("admission");
    cfg.queue_capacity = 4;
    cfg.high_water = 100; // stay exact; this test is about admission only
    let server = Server::new(cfg).unwrap();
    server.add_tenant(tenant_spec("t"));
    let procs = server.processors("t").unwrap();

    // Kill the worker so the queue can only fill.
    crash_worker(&server, "t");

    let mut tickets = Vec::new();
    for i in 0..4 {
        tickets.push(server.submit("t", batch(&procs, i, 10), None).unwrap());
    }
    let rejected = server.submit("t", batch(&procs, 99, 10), None).unwrap_err();
    match rejected {
        Rejected::QueueFull { depth, .. } => assert_eq!(depth, 4),
        other => panic!("expected QueueFull, got {other}"),
    }

    // Supervisor heals the tenant; the whole backlog is then served.
    server.recover_now("t").unwrap();
    for t in tickets {
        t.wait().unwrap();
    }
    let m = server.metrics("t").unwrap();
    assert_eq!(m.accepted, 4);
    assert_eq!(m.rejected_full, 1);
    assert_eq!(m.served, 4);
    assert_eq!(m.restarts, 1);
    assert!(m.shed_fraction() > 0.0);

    let reports = server.shutdown();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].1.epochs.len(), 4);
}

#[test]
fn expired_deadlines_are_shed_not_served() {
    let server = Server::new(manual_cfg("deadline")).unwrap();
    server.add_tenant(tenant_spec("t"));
    let procs = server.processors("t").unwrap();

    crash_worker(&server, "t");

    let doomed = server.submit("t", batch(&procs, 1, 10), Some(Duration::from_millis(1))).unwrap();
    let healthy =
        server.submit("t", batch(&procs, 2, 10), Some(Duration::from_secs(3600))).unwrap();
    std::thread::sleep(Duration::from_millis(10)); // let the first deadline lapse
    server.recover_now("t").unwrap();

    match doomed.wait() {
        Err(Rejected::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    healthy.wait().unwrap();
    let m = server.metrics("t").unwrap();
    assert_eq!(m.deadline_shed, 1);
    assert_eq!(m.served, 1);
    drop(server.shutdown());
}

#[test]
fn overload_degrades_to_estimator_and_hysteresis_restores_exact() {
    let mut cfg = manual_cfg("degrade");
    cfg.high_water = 4;
    cfg.low_water = 1;
    let server = Server::new(cfg).unwrap();
    server.add_tenant(tenant_spec("t"));
    let procs = server.processors("t").unwrap();

    // Build a backlog of 6 against a dead worker, then heal: the worker
    // pops at depths 5,4,3,2,1,0 → degraded for the first four epochs
    // (hysteresis holds Degraded between the marks), exact again once
    // drained to the low-water mark.
    crash_worker(&server, "t");
    let tickets: Vec<_> =
        (0..6).map(|i| server.submit("t", batch(&procs, i, 10), None).unwrap()).collect();
    server.recover_now("t").unwrap();

    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    let modes: Vec<ServeMode> = outcomes.iter().map(|o| o.mode).collect();
    assert_eq!(
        modes,
        vec![
            ServeMode::Degraded,
            ServeMode::Degraded,
            ServeMode::Degraded,
            ServeMode::Degraded,
            ServeMode::Exact,
            ServeMode::Exact,
        ]
    );
    // Degradation is announced per epoch: estimator-priced summaries
    // carry bounds, exact ones do not.
    for o in &outcomes {
        assert_eq!(
            o.summary.estimate.is_some(),
            o.mode == ServeMode::Degraded,
            "epoch {}",
            o.epoch
        );
    }
    assert_eq!(server.mode("t").unwrap(), ServeMode::Exact);
    let m = server.metrics("t").unwrap();
    assert_eq!(m.degraded_epochs, 4);
    assert_eq!(m.served, 6);

    let reports = server.shutdown();
    assert_eq!(reports[0].1.estimated_epochs, 4);
}

/// The acceptance drill: kill the worker mid-run while the tenant's
/// fault plan has a bus down, recover from the last durable checkpoint
/// plus journal tail, and the final report matches an unbroken twin
/// session bit for bit.
#[test]
fn supervised_crash_mid_outage_matches_unbroken_twin_bit_for_bit() {
    let spec = faulty_spec("t");
    let server = Server::new(manual_cfg("crash_parity")).unwrap();
    server.add_tenant(spec.clone());
    let procs = server.processors("t").unwrap();
    let batches: Vec<_> = (0..8).map(|i| batch(&procs, 1000 + i, 12)).collect();

    // Serve 2 epochs, checkpoint, serve 1 more (journal tail), then
    // crash inside the outage window (epochs 2..4) and recover.
    for b in &batches[..2] {
        server.submit("t", b.clone(), None).unwrap().wait().unwrap();
    }
    server.checkpoint_now("t").unwrap();
    server.submit("t", batches[2].clone(), None).unwrap().wait().unwrap();
    crash_worker(&server, "t");
    server.recover_now("t").unwrap();
    for b in &batches[3..] {
        server.submit("t", b.clone(), None).unwrap().wait().unwrap();
    }
    let m = server.metrics("t").unwrap();
    assert_eq!(m.restarts, 1);
    assert_eq!(m.recovery_epochs, vec![1], "one journaled epoch past the checkpoint");
    let reports = server.shutdown();
    let served = &reports[0].1;

    let mut twin = Session::new(&spec);
    for b in &batches {
        twin.push_epoch(b).unwrap();
    }
    let expected = twin.into_report();
    assert_eq!(*served, expected);
    assert!(expected.epochs.iter().any(|e| e.buses_down > 0), "outage must be live in the run");
}

#[test]
fn crash_that_raced_shutdown_reports_worker_lost_but_keeps_served_state() {
    let spec = tenant_spec("t");
    let server = Server::new(manual_cfg("lost")).unwrap();
    server.add_tenant(spec.clone());
    let procs = server.processors("t").unwrap();

    let first = batch(&procs, 5, 10);
    server.submit("t", first.clone(), None).unwrap().wait().unwrap();
    crash_worker(&server, "t");
    // Accepted after the crash, never served: shutdown does not respawn.
    let orphan = server.submit("t", batch(&procs, 6, 10), None).unwrap();
    let reports = server.shutdown();
    match orphan.wait() {
        Err(Rejected::WorkerLost) => {}
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    // The served epoch survives via journal rebuild even though no
    // checkpoint was ever taken.
    let mut twin = Session::new(&spec);
    twin.push_epoch(&first).unwrap();
    assert_eq!(reports[0].1, twin.into_report());
}

#[test]
fn invalid_batches_are_rejected_at_admission_not_served() {
    let server = Server::new(manual_cfg("invalid")).unwrap();
    server.add_tenant(tenant_spec("t"));
    let procs = server.processors("t").unwrap();

    let bad_object = vec![OnlineRequest {
        processor: procs[0],
        object: ObjectId(OBJECTS as u32),
        is_write: false,
    }];
    assert!(matches!(server.submit("t", bad_object, None), Err(Rejected::InvalidRequest(_))));

    let net = TopologyFamily::Balanced { branching: 3, height: 2 }.build();
    let bad_node =
        vec![OnlineRequest { processor: net.root(), object: ObjectId(0), is_write: false }];
    assert!(matches!(server.submit("t", bad_node, None), Err(Rejected::InvalidRequest(_))));

    assert!(matches!(
        server.submit("nope", batch(&procs, 0, 4), None),
        Err(Rejected::UnknownTenant(_))
    ));

    // Nothing was admitted; the report is empty.
    let reports = server.shutdown();
    assert_eq!(reports[0].1.epochs.len(), 0);
}

#[test]
fn tenants_are_isolated_and_all_accepted_requests_are_served() {
    let server = Server::new(manual_cfg("multi")).unwrap();
    server.add_tenant(tenant_spec("a"));
    server.add_tenant(faulty_spec("b"));
    let pa = server.processors("a").unwrap();
    let pb = server.processors("b").unwrap();

    let mut tickets = Vec::new();
    for i in 0..5u64 {
        tickets.push(server.submit("a", batch(&pa, i, 8), None).unwrap());
        tickets.push(server.submit("b", batch(&pb, 100 + i, 8), None).unwrap());
    }
    // Crash one tenant mid-stream; the other must be untouched.
    crash_worker(&server, "b");
    server.recover_now("b").unwrap();
    for (i, t) in tickets.into_iter().enumerate() {
        let tenant = if i % 2 == 0 { "a" } else { "b" };
        wait_on(&server, tenant, t);
    }
    assert_eq!(server.metrics("a").unwrap().restarts, 0);
    assert_eq!(server.metrics("b").unwrap().restarts, 1);

    let reports = server.shutdown();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].0, "a");
    assert_eq!(reports[1].0, "b");
    assert_eq!(reports[0].1.epochs.len(), 5);
    assert_eq!(reports[1].1.epochs.len(), 5);
}

/// The background watchdog on a fast cadence does the whole loop by
/// itself: snapshots appear, a crashed worker is detected and healed
/// with no explicit `recover_now`.
#[test]
fn background_watchdog_checkpoints_and_heals_on_its_own() {
    let mut cfg = ServerConfig::new(tmp("auto"));
    cfg.watchdog_poll = Duration::from_millis(5);
    let server = Server::new(cfg).unwrap();
    server.add_tenant(tenant_spec("t"));
    let procs = server.processors("t").unwrap();

    for i in 0..3 {
        server.submit("t", batch(&procs, i, 10), None).unwrap().wait().unwrap();
    }
    server.inject_crash("t").unwrap();
    // The watchdog must notice and respawn within a few polls.
    let healed = server.submit("t", batch(&procs, 9, 10), None).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut t = healed;
    let outcome = loop {
        match t.try_wait() {
            Ok(r) => break r,
            Err(back) => {
                assert!(std::time::Instant::now() < deadline, "watchdog never healed the tenant");
                std::thread::sleep(Duration::from_millis(5));
                t = back;
            }
        }
    };
    outcome.unwrap();
    assert!(server.metrics("t").unwrap().restarts >= 1);
    drop(server.shutdown());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single-byte corruption of the *newest* durable checkpoint is
    /// detected by the frame checksum and recovery falls back to the
    /// previous checkpoint — the final report still matches the
    /// unbroken twin bit for bit.
    #[test]
    fn corrupt_newest_checkpoint_falls_back_bit_for_bit(pos in 0usize..4096, flip in 1u8..=255) {
        let spec = tenant_spec("t");
        let server = Server::new(manual_cfg("flip")).unwrap();
        server.add_tenant(spec.clone());
        let procs = server.processors("t").unwrap();
        let batches: Vec<_> = (0..6).map(|i| batch(&procs, 2000 + i, 10)).collect();

        server.submit("t", batches[0].clone(), None).unwrap().wait().unwrap();
        server.checkpoint_now("t").unwrap();
        server.submit("t", batches[1].clone(), None).unwrap().wait().unwrap();
        let newest = server.checkpoint_now("t").unwrap();
        server.submit("t", batches[2].clone(), None).unwrap().wait().unwrap();

        // Flip one byte somewhere in the newest checkpoint.
        let mut bytes = std::fs::read(&newest).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        std::fs::write(&newest, &bytes).unwrap();

        crash_worker(&server, "t");
        server.recover_now("t").unwrap();
        for b in &batches[3..] {
            server.submit("t", b.clone(), None).unwrap().wait().unwrap();
        }
        // Fallback replayed from the older checkpoint: both journaled
        // epochs past it were reapplied.
        let m = server.metrics("t").unwrap();
        prop_assert_eq!(m.recovery_epochs.clone(), vec![2]);
        let reports = server.shutdown();

        let mut twin = Session::new(&spec);
        for b in &batches {
            twin.push_epoch(b).unwrap();
        }
        prop_assert_eq!(&reports[0].1, &twin.into_report());
    }
}
