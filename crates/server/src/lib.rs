//! # hbn-server
//!
//! A supervised multi-tenant session service over the scenario engine —
//! the long-running front end the north star asks for, serving pushed
//! traffic from many concurrent tenants with production-shaped
//! robustness machinery:
//!
//! - **Admission control + backpressure** — every tenant has a bounded
//!   ingest queue; a full queue rejects with [`Rejected::QueueFull`]
//!   and the client backs off, so overload is pushed back to the edge
//!   instead of growing unbounded memory.
//! - **Graceful degradation** — past the high-water mark a tenant
//!   sheds load by serving epochs under the congestion-bound estimator
//!   ([`hbn_scenario::ReplayKernel::Estimate`]) instead of exact
//!   replay; hysteresis restores exact replay once the queue drains.
//!   Degraded epochs are visible per-epoch (`summary.estimate` is
//!   `Some`) — the service degrades *announced*, never silently.
//! - **Deadlines** — a request whose deadline expires before a worker
//!   reaches it is shed with [`Rejected::DeadlineExpired`], bounding
//!   queueing delay for everyone behind it.
//! - **Supervision** — a watchdog snapshots each tenant to a durable
//!   checkpoint on a cadence, detects a panicked worker, restores the
//!   newest readable checkpoint (falling back to the previous one if
//!   the newest is torn), replays the journal of epochs served since
//!   it, reconciles the in-flight request, and respawns the worker —
//!   bit-for-bit the state an unbroken run would have reached.
//!
//! ```
//! use hbn_dynamic::OnlineRequest;
//! use hbn_scenario::{ScenarioSpec, TopologyFamily};
//! use hbn_server::{Server, ServerConfig};
//! use hbn_workload::{ObjectId, PhaseSchedule};
//!
//! let dir = std::env::temp_dir().join("hbn_server_doc");
//! let server = Server::new(ServerConfig::new(&dir)).unwrap();
//! // A tenant serves pushed traffic only: empty schedule, 8 objects.
//! let spec = ScenarioSpec::builder(
//!     "tenant-a",
//!     TopologyFamily::Star { processors: 4, bus_bandwidth: 2 },
//!     PhaseSchedule::new(8, vec![]),
//! )
//! .threshold(2)
//! .build();
//! server.add_tenant(spec);
//!
//! // Request addresses come from the tenant's own topology.
//! let procs = server.processors("tenant-a").unwrap();
//! let batch: Vec<OnlineRequest> = (0..16u32)
//!     .map(|i| OnlineRequest {
//!         processor: procs[i as usize % procs.len()],
//!         object: ObjectId(i % 8),
//!         is_write: i % 3 == 0,
//!     })
//!     .collect();
//! let outcome = server.submit("tenant-a", batch, None).unwrap().wait().unwrap();
//! assert_eq!(outcome.epoch, 0);
//! assert_eq!(outcome.summary.traffic.requests, 16);
//!
//! let reports = server.shutdown();
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].1.epochs.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod metrics;
mod server;
mod tenant;

pub use config::ServerConfig;
pub use error::{Rejected, ServerError};
pub use hbn_dynamic::OnlineRequest;
pub use metrics::{percentile, TenantMetrics};
pub use server::{Server, Ticket};
pub use tenant::{EpochOutcome, ServeMode};
