//! The multi-tenant front end and its supervisor.
//!
//! A [`Server`] owns one worker thread per tenant plus one watchdog
//! thread. The watchdog does two jobs on a cadence: it snapshots every
//! healthy tenant to a durable checkpoint ([`hbn_scenario::SessionCheckpoint::save`]),
//! and it detects a panicked worker and rebuilds the tenant — restore
//! the newest readable checkpoint, replay the journal tail of epochs
//! served since it, reconcile the in-flight job, respawn the worker.
//! Every supervision step is also callable directly
//! ([`Server::checkpoint_now`], [`Server::recover_now`]) so tests can
//! drive it deterministically with the cadence effectively disabled.

use crate::config::ServerConfig;
use crate::error::{Rejected, ServerError};
use crate::metrics::TenantMetrics;
use crate::tenant::{
    relock, worker_loop, Command, EpochOutcome, Job, QueueState, ServeMode, TenantShared,
};
use hbn_dynamic::OnlineRequest;
use hbn_scenario::{ScenarioReport, ScenarioSpec, Session};
use hbn_topology::NodeId;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to one submitted request; resolves to the served epoch or the
/// reason it was not served.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<EpochOutcome, Rejected>>,
}

impl Ticket {
    /// Block until the request resolves. A dropped worker (crash raced
    /// shutdown) resolves to [`Rejected::WorkerLost`].
    pub fn wait(self) -> Result<EpochOutcome, Rejected> {
        self.rx.recv().unwrap_or(Err(Rejected::WorkerLost))
    }

    /// Non-blocking poll; `Err(self)` when not resolved yet.
    pub fn try_wait(self) -> Result<Result<EpochOutcome, Rejected>, Ticket> {
        match self.rx.try_recv() {
            Ok(r) => Ok(r),
            Err(mpsc::TryRecvError::Empty) => Err(Ticket { rx: self.rx }),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(Rejected::WorkerLost)),
        }
    }
}

struct Tenant {
    shared: Arc<TenantShared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

struct Inner {
    cfg: Arc<ServerConfig>,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    shutting: AtomicBool,
    /// Watchdog parking spot: `true` = stop. Condvar wakes the park
    /// early so shutdown never waits out a long cadence.
    stop: (Mutex<bool>, Condvar),
}

/// A supervised multi-tenant session service. See the crate docs for
/// the full state machine.
pub struct Server {
    inner: Arc<Inner>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Start a server with no tenants. Creates the checkpoint directory
    /// and spawns the watchdog.
    ///
    /// # Errors
    ///
    /// I/O failure creating the checkpoint directory.
    pub fn new(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.checkpoint_dir)?;
        let inner = Arc::new(Inner {
            cfg: Arc::new(cfg),
            tenants: Mutex::new(HashMap::new()),
            shutting: AtomicBool::new(false),
            stop: (Mutex::new(false), Condvar::new()),
        });
        let wd = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hbn-server-watchdog".into())
                .spawn(move || watchdog_loop(inner))
                .expect("spawn watchdog")
        };
        Ok(Server { inner, watchdog: Mutex::new(Some(wd)) })
    }

    /// Register a tenant and spawn its worker. The tenant's name is
    /// `spec.name`; its strategy is built from `spec.strategy`, which
    /// is also how recovery rebuilds it from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if a tenant with this name already exists, or if the spec
    /// is invalid (as [`Session::new`]).
    pub fn add_tenant(&self, spec: ScenarioSpec) {
        let session = Session::new(&spec);
        let shared = Arc::new(TenantShared {
            name: spec.name.clone(),
            net: session.network().clone(),
            max_objects: session.max_objects(),
            spec,
            queue: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            mode: Mutex::new(ServeMode::Exact),
            session: Mutex::new(Some(session)),
            journal: Mutex::new(Vec::new()),
            inflight: Mutex::new(None),
            metrics: Mutex::new(TenantMetrics::default()),
            checkpoints: Mutex::new(Vec::new()),
            supervise: Mutex::new(()),
        });
        let worker = spawn_worker(&shared, &self.inner.cfg);
        let tenant = Arc::new(Tenant { shared, worker: Mutex::new(Some(worker)) });
        let mut tenants = relock(&self.inner.tenants);
        let prev = tenants.insert(tenant.shared.name.clone(), tenant);
        assert!(prev.is_none(), "duplicate tenant name");
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, ServerError> {
        relock(&self.inner.tenants)
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(name.to_string()))
    }

    /// Submit a request batch to a tenant. Admission happens here:
    /// validation against the tenant's topology, then the bounded-queue
    /// check. On admission the batch will be served as one epoch; the
    /// returned [`Ticket`] resolves to the outcome.
    ///
    /// `deadline` is enforced server-side: if it expires before a
    /// worker pops the request, the request is shed with
    /// [`Rejected::DeadlineExpired`] instead of served.
    ///
    /// # Errors
    ///
    /// [`Rejected`] with the admission failure; nothing was enqueued.
    pub fn submit(
        &self,
        tenant: &str,
        batch: Vec<OnlineRequest>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        if self.inner.shutting.load(Ordering::SeqCst) {
            return Err(Rejected::ShuttingDown);
        }
        let t = match self.tenant(tenant) {
            Ok(t) => t,
            Err(_) => return Err(Rejected::UnknownTenant(tenant.to_string())),
        };
        let shared = &t.shared;
        for (i, req) in batch.iter().enumerate() {
            if req.object.index() >= shared.max_objects {
                return Err(Rejected::InvalidRequest(format!(
                    "request {i} references object {} >= max_objects {}",
                    req.object.index(),
                    shared.max_objects
                )));
            }
            if !shared.net.is_processor(req.processor) {
                return Err(Rejected::InvalidRequest(format!(
                    "request {i} is issued from a non-processor node"
                )));
            }
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job { batch, deadline: deadline.map(|d| now + d), enqueued_at: now, resp: tx };
        {
            let mut q = relock(&shared.queue);
            if q.shutting_down {
                return Err(Rejected::ShuttingDown);
            }
            if q.jobs >= self.inner.cfg.queue_capacity {
                let depth = q.jobs;
                drop(q);
                relock(&shared.metrics).rejected_full += 1;
                return Err(Rejected::QueueFull { tenant: tenant.to_string(), depth });
            }
            q.q.push_back(Command::Job(job));
            q.jobs += 1;
        }
        relock(&shared.metrics).accepted += 1;
        shared.not_empty.notify_one();
        Ok(Ticket { rx })
    }

    /// Whether the tenant's worker thread is currently alive (`false`
    /// in the window between a crash and its recovery).
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn worker_alive(&self, tenant: &str) -> Result<bool, ServerError> {
        let t = self.tenant(tenant)?;
        Ok(!worker_is_dead(&t))
    }

    /// The tenant's processor nodes — the valid `processor` values for
    /// submitted requests.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn processors(&self, tenant: &str) -> Result<Vec<NodeId>, ServerError> {
        Ok(self.tenant(tenant)?.shared.net.processors().to_vec())
    }

    /// Current ingest-queue depth of a tenant (jobs only).
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn queue_depth(&self, tenant: &str) -> Result<usize, ServerError> {
        Ok(relock(&self.tenant(tenant)?.shared.queue).jobs)
    }

    /// The tenant's current serve mode.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn mode(&self, tenant: &str) -> Result<ServeMode, ServerError> {
        Ok(*relock(&self.tenant(tenant)?.shared.mode))
    }

    /// Snapshot of the tenant's service metrics.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn metrics(&self, tenant: &str) -> Result<TenantMetrics, ServerError> {
        Ok(relock(&self.tenant(tenant)?.shared.metrics).clone())
    }

    /// The tenant's scenario report so far (epochs served to date).
    ///
    /// # Errors
    ///
    /// Unknown tenant, or the tenant is mid-recovery with no live
    /// session.
    pub fn report(&self, tenant: &str) -> Result<ScenarioReport, ServerError> {
        let t = self.tenant(tenant)?;
        let slot = relock(&t.shared.session);
        match slot.as_ref() {
            Some(sess) => Ok(sess.report()),
            None => Err(ServerError::TenantLost {
                tenant: tenant.to_string(),
                why: "session is mid-recovery".into(),
            }),
        }
    }

    /// Inject a crash: the tenant's worker panics before serving the
    /// next queued job. The fault-injection hook of the supervision
    /// tests and `exp_server_crash`.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn inject_crash(&self, tenant: &str) -> Result<(), ServerError> {
        let t = self.tenant(tenant)?;
        {
            let mut q = relock(&t.shared.queue);
            q.q.push_front(Command::Crash);
        }
        t.shared.not_empty.notify_one();
        Ok(())
    }

    /// Take a durable checkpoint of the tenant right now (the same step
    /// the watchdog runs on its cadence). Returns the checkpoint path.
    ///
    /// # Errors
    ///
    /// Unknown tenant, no live session, or checkpoint I/O failure.
    pub fn checkpoint_now(&self, tenant: &str) -> Result<PathBuf, ServerError> {
        let t = self.tenant(tenant)?;
        checkpoint_tenant(&self.inner.cfg, &t.shared)?.ok_or_else(|| ServerError::TenantLost {
            tenant: tenant.to_string(),
            why: "no live session to checkpoint".into(),
        })
    }

    /// Detect-and-recover the tenant right now (the same step the
    /// watchdog runs when it finds a dead worker). No-op if the worker
    /// is healthy.
    ///
    /// # Errors
    ///
    /// Unknown tenant, or recovery exhausted every checkpoint.
    pub fn recover_now(&self, tenant: &str) -> Result<(), ServerError> {
        let t = self.tenant(tenant)?;
        if worker_is_dead(&t) {
            recover_tenant(&self.inner.cfg, &t)?;
        }
        Ok(())
    }

    /// Block until the tenant's queue is fully drained (no queued jobs
    /// and no in-flight job). Test/benchmark convenience.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn drain(&self, tenant: &str) -> Result<(), ServerError> {
        let t = self.tenant(tenant)?;
        loop {
            let idle = relock(&t.shared.queue).jobs == 0 && relock(&t.shared.inflight).is_none();
            if idle {
                return Ok(());
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Graceful shutdown: reject new work, drain every healthy tenant's
    /// queue, reconstruct the session state of crashed tenants from
    /// checkpoint + journal (their still-queued jobs resolve to
    /// [`Rejected::WorkerLost`]), and return each tenant's final
    /// [`ScenarioReport`], sorted by tenant name.
    pub fn shutdown(self) -> Vec<(String, ScenarioReport)> {
        self.inner.shutting.store(true, Ordering::SeqCst);
        // Stop the watchdog first so it cannot race the drain below.
        {
            let mut stop = relock(&self.inner.stop.0);
            *stop = true;
            self.inner.stop.1.notify_all();
        }
        if let Some(wd) = relock(&self.watchdog).take() {
            let _ = wd.join();
        }

        let tenants: Vec<Arc<Tenant>> = relock(&self.inner.tenants).values().cloned().collect();
        let mut out = Vec::new();
        for t in tenants {
            let crashed = worker_is_dead(&t);
            {
                let mut q = relock(&t.shared.queue);
                q.shutting_down = true;
                if !crashed {
                    q.q.push_back(Command::Shutdown);
                }
            }
            t.shared.not_empty.notify_one();
            if let Some(h) = relock(&t.worker).take() {
                let _ = h.join();
            }
            if crashed {
                // Rebuild the session state (checkpoint + journal tail)
                // so the final report exists, but do not respawn: the
                // queued jobs are dropped and their tickets resolve to
                // WorkerLost.
                let _ = rebuild_session(&self.inner.cfg, &t.shared);
                relock(&t.shared.queue).q.clear();
            }
            let report = relock(&t.shared.session).take().map(Session::into_report);
            if let Some(report) = report {
                out.push((t.shared.name.clone(), report));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Shut the watchdog down even if `shutdown` was never called,
        // so a dropped server does not leak a spinning thread.
        {
            let mut stop = relock(&self.inner.stop.0);
            *stop = true;
            self.inner.stop.1.notify_all();
        }
        if let Some(wd) = relock(&self.watchdog).take() {
            let _ = wd.join();
        }
        for t in relock(&self.inner.tenants).values() {
            relock(&t.shared.queue).shutting_down = true;
            t.shared.not_empty.notify_all();
        }
    }
}

fn spawn_worker(shared: &Arc<TenantShared>, cfg: &Arc<ServerConfig>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let cfg = Arc::clone(cfg);
    std::thread::Builder::new()
        .name(format!("hbn-tenant-{}", shared.name))
        .spawn(move || worker_loop(shared, cfg))
        .expect("spawn tenant worker")
}

fn worker_is_dead(t: &Tenant) -> bool {
    relock(&t.worker).as_ref().map(|h| h.is_finished()).unwrap_or(true)
}

/// One watchdog tick over one tenant: recover it if the worker died,
/// otherwise snapshot it.
fn supervise_tenant(cfg: &Arc<ServerConfig>, t: &Arc<Tenant>) {
    if worker_is_dead(t) {
        // An unrecoverable tenant stays dead; its tickets resolve to
        // WorkerLost and shutdown reports whatever state remains.
        let _ = recover_tenant(cfg, t);
    } else {
        let _ = checkpoint_tenant(cfg, &t.shared);
    }
}

fn watchdog_loop(inner: Arc<Inner>) {
    loop {
        // Park FIRST, and until the full cadence has elapsed. Both
        // halves matter: supervising before the first park would let a
        // late-scheduled watchdog thread run its initial pass after the
        // caller has already added tenants and injected a crash, and a
        // spurious condvar wakeup would cut a park short — either way a
        // deliberately huge `watchdog_poll` (tests and harnesses that
        // drive checkpoint/recover manually) could heal a killed worker
        // out from under a client still waiting to observe it dead.
        // The cadence is a floor on the earliest supervision time; the
        // condvar only exists so `shutdown` never waits it out.
        let mut stop = relock(&inner.stop.0);
        let deadline = Instant::now() + inner.cfg.watchdog_poll;
        loop {
            if *stop {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) =
                inner.stop.1.wait_timeout(stop, deadline - now).unwrap_or_else(|e| e.into_inner());
            stop = guard;
        }
        drop(stop);
        let tenants: Vec<Arc<Tenant>> = relock(&inner.tenants).values().cloned().collect();
        for t in &tenants {
            supervise_tenant(&inner.cfg, t);
        }
    }
}

/// Snapshot a tenant to a durable checkpoint, rotate the retained set,
/// and truncate the journal below the oldest retained checkpoint.
/// `Ok(None)` when the tenant has no live session (mid-recovery).
fn checkpoint_tenant(
    cfg: &ServerConfig,
    shared: &TenantShared,
) -> Result<Option<PathBuf>, ServerError> {
    let _step = relock(&shared.supervise);
    let cp = {
        let slot = relock(&shared.session);
        match slot.as_ref() {
            Some(sess) => sess.checkpoint(),
            None => return Ok(None),
        }
    };
    let epoch = cp.epoch_index();
    if let Some((last_epoch, last_path)) = relock(&shared.checkpoints).last() {
        if *last_epoch == epoch {
            return Ok(Some(last_path.clone()));
        }
    }
    let path = cfg.checkpoint_dir.join(format!("{}_e{epoch}.hbnc", shared.name));
    cp.save(&path)?;
    let oldest_retained = {
        let mut cps = relock(&shared.checkpoints);
        cps.push((epoch, path.clone()));
        while cps.len() > cfg.checkpoints_retained.max(1) {
            let (_, old) = cps.remove(0);
            let _ = std::fs::remove_file(old);
        }
        cps[0].0
    };
    relock(&shared.journal).retain(|e| e.epoch >= oldest_retained);
    Ok(Some(path))
}

/// Reconstruct a tenant's session: newest readable checkpoint (falling
/// back to older ones on a corrupt read, or to a fresh session when no
/// checkpoint was ever taken), then replay the journal tail. Returns
/// the journal epochs replayed.
fn rebuild_session(cfg: &ServerConfig, shared: &TenantShared) -> Result<u64, ServerError> {
    // Discard whatever half-mutated state the crash left behind.
    *relock(&shared.session) = None;
    let candidates: Vec<(usize, PathBuf)> = relock(&shared.checkpoints).clone();
    let mut restored = None;
    let mut last_err = String::from("no durable checkpoint on disk");
    for (_, path) in candidates.iter().rev() {
        match Session::restore_from_file(&shared.spec, path) {
            Ok(s) => {
                restored = Some(s);
                break;
            }
            Err(e) => last_err = format!("{}: {e}", path.display()),
        }
    }
    let mut sess = match restored {
        Some(s) => s,
        // Never checkpointed: the journal is complete from epoch 0, so
        // a fresh session replays the whole history.
        None if candidates.is_empty() => Session::new(&shared.spec),
        None => return Err(ServerError::TenantLost { tenant: shared.name.clone(), why: last_err }),
    };
    let tail: Vec<_> = {
        let journal = relock(&shared.journal);
        journal.iter().filter(|e| e.epoch >= sess.epoch_index()).cloned().collect()
    };
    let mut replayed = 0u64;
    for entry in &tail {
        debug_assert_eq!(entry.epoch, sess.epoch_index(), "journal tail must be contiguous");
        sess.set_replay_override(entry.mode.kernel(cfg.degraded_sample_every));
        if let Err(e) = sess.push_epoch(&entry.batch) {
            return Err(ServerError::TenantLost {
                tenant: shared.name.clone(),
                why: format!("journal replay failed at epoch {}: {e}", entry.epoch),
            });
        }
        replayed += 1;
    }
    // Serving resumes under the tenant's current mode.
    sess.set_replay_override(relock(&shared.mode).kernel(cfg.degraded_sample_every));

    // Reconcile the in-flight job: if its epoch completed (it is behind
    // the rebuilt head), answer the client from the recorded summary;
    // otherwise requeue it at the front so it is served exactly once.
    if let Some(inf) = relock(&shared.inflight).take() {
        if inf.epoch < sess.epoch_index() {
            if let Some(summary) = sess.epochs().get(inf.epoch).cloned() {
                let outcome =
                    EpochOutcome { epoch: inf.epoch, mode: inf.mode, queue_depth: 0, summary };
                let _ = inf.job.resp.send(Ok(outcome));
            }
        } else {
            let mut q = relock(&shared.queue);
            q.q.push_front(Command::Job(inf.job));
            q.jobs += 1;
            drop(q);
            shared.not_empty.notify_one();
        }
    }
    *relock(&shared.session) = Some(sess);
    Ok(replayed)
}

/// Full recovery of a crashed tenant: join the dead worker, rebuild the
/// session, record recovery metrics, respawn the worker.
fn recover_tenant(cfg: &Arc<ServerConfig>, t: &Arc<Tenant>) -> Result<(), ServerError> {
    let start = Instant::now();
    let _step = relock(&t.shared.supervise);
    // Another supervisor (watchdog vs. explicit `recover_now`) may have
    // healed the tenant while we waited for the step lock.
    if !worker_is_dead(t) {
        return Ok(());
    }
    if let Some(h) = relock(&t.worker).take() {
        let _ = h.join();
    }
    let replayed = rebuild_session(cfg, &t.shared)?;
    {
        let mut m = relock(&t.shared.metrics);
        m.restarts += 1;
        m.recovery_epochs.push(replayed);
        m.recovery_micros.push(start.elapsed().as_micros() as u64);
    }
    *relock(&t.worker) = Some(spawn_worker(&t.shared, cfg));
    Ok(())
}
