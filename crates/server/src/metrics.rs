//! Per-tenant service metrics: admission counters, ingest latency, and
//! recovery timings — the raw material of `BENCH_server.json`.

/// Counters and latency samples for one tenant, accumulated by the
/// admission path, the worker, and the supervisor. Snapshot it through
/// [`crate::Server::metrics`].
#[derive(Debug, Clone, Default)]
pub struct TenantMetrics {
    /// Requests admitted into the ingest queue.
    pub accepted: u64,
    /// Requests rejected at admission with `QueueFull`.
    pub rejected_full: u64,
    /// Admitted requests shed by the worker because their deadline had
    /// expired before they were popped.
    pub deadline_shed: u64,
    /// Epochs actually served (exact or degraded).
    pub served: u64,
    /// Of the served epochs, how many ran in degraded (estimator) mode.
    pub degraded_epochs: u64,
    /// Per served epoch: microseconds from enqueue to response.
    pub ingest_micros: Vec<u64>,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Per recovery: journal epochs replayed to catch up from the
    /// restored checkpoint.
    pub recovery_epochs: Vec<u64>,
    /// Per recovery: wall microseconds from crash detection to the
    /// respawned worker.
    pub recovery_micros: Vec<u64>,
}

impl TenantMetrics {
    /// Fraction of admitted-or-rejected requests that did not produce a
    /// served epoch (rejected at admission or shed at the deadline).
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.accepted + self.rejected_full;
        if offered == 0 {
            0.0
        } else {
            (self.rejected_full + self.deadline_shed) as f64 / offered as f64
        }
    }
}

/// Nearest-rank percentile of an *unsorted* sample set (`p` in
/// `[0, 100]`); `0` on an empty set. Sorts a copy — metrics vectors are
/// small.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [50, 10, 40, 20, 30];
        assert_eq!(percentile(&s, 50.0), 30);
        assert_eq!(percentile(&s, 99.0), 50);
        assert_eq!(percentile(&s, 0.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn shed_fraction_counts_rejections_and_deadline_sheds() {
        let mut m = TenantMetrics::default();
        assert_eq!(m.shed_fraction(), 0.0);
        m.accepted = 8;
        m.rejected_full = 2;
        m.deadline_shed = 1;
        assert!((m.shed_fraction() - 0.3).abs() < 1e-12);
    }
}
