//! Per-tenant state and the worker loop.
//!
//! Each tenant owns one [`Session`] and one worker thread. All mutable
//! state lives in [`TenantShared`] behind independent mutexes so the
//! admission path, the worker, and the supervisor can each touch only
//! what they need; no two of these locks are ever held at once except
//! the worker's session+inflight pairing noted below. Every lock is
//! acquired through [`relock`], which shrugs off poison — a panicked
//! worker is an *expected* event here, and the supervisor must still be
//! able to read the state the panic left behind.

use crate::config::ServerConfig;
use crate::error::Rejected;
use crate::metrics::TenantMetrics;
use hbn_dynamic::OnlineRequest;
use hbn_scenario::{EpochSummary, ReplayKernel, ScenarioSpec, Session};
use hbn_topology::Network;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Lock a mutex, recovering the guard from a poisoned lock. Worker
/// panics are an expected event in this crate (crash injection,
/// supervised recovery); the data under the lock is reconciled by the
/// supervisor, not abandoned.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How a tenant is currently serving epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Normal operation: the spec's own replay kernel.
    Exact,
    /// Load shedding: replay degraded to the congestion-bound estimator
    /// ([`ReplayKernel::Estimate`]) until the queue drains below the
    /// low-water mark.
    Degraded,
}

impl ServeMode {
    /// The session replay override this mode maps to (`None` = the
    /// spec's own kernel).
    pub(crate) fn kernel(self, sample_every: usize) -> Option<ReplayKernel> {
        match self {
            ServeMode::Exact => None,
            ServeMode::Degraded => Some(ReplayKernel::Estimate { sample_every }),
        }
    }
}

/// The served result a [`crate::Ticket`] resolves to.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Global epoch index the batch was served as.
    pub epoch: usize,
    /// Mode the epoch was served under.
    pub mode: ServeMode,
    /// Ingest-queue depth observed when the worker popped the request.
    pub queue_depth: usize,
    /// The engine's epoch summary (`summary.estimate.is_some()` iff the
    /// epoch was estimator-priced).
    pub summary: EpochSummary,
}

/// One admitted request waiting in a tenant's ingest queue.
#[derive(Debug)]
pub(crate) struct Job {
    pub batch: Vec<OnlineRequest>,
    pub deadline: Option<Instant>,
    pub enqueued_at: Instant,
    pub resp: mpsc::Sender<Result<EpochOutcome, Rejected>>,
}

impl Clone for Job {
    fn clone(&self) -> Job {
        Job {
            batch: self.batch.clone(),
            deadline: self.deadline,
            enqueued_at: self.enqueued_at,
            resp: self.resp.clone(),
        }
    }
}

/// Commands a worker pops from its queue.
#[derive(Debug)]
pub(crate) enum Command {
    Job(Job),
    /// Injected fault: the worker panics, exercising the supervisor.
    Crash,
    /// Graceful drain: the worker exits after everything ahead of this.
    Shutdown,
}

/// The bounded ingest queue.
#[derive(Debug, Default)]
pub(crate) struct QueueState {
    pub q: VecDeque<Command>,
    /// Jobs currently queued (excludes control commands).
    pub jobs: usize,
    pub shutting_down: bool,
}

/// One served epoch, recorded *after* `push_epoch` succeeds — the tail
/// the supervisor replays on top of the last durable checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct JournalEntry {
    pub epoch: usize,
    pub mode: ServeMode,
    pub batch: Vec<OnlineRequest>,
}

/// The job a worker is serving right now, stashed just before
/// `push_epoch` so a crash mid-serve can be reconciled: if the journal
/// shows the epoch completed, the client gets its outcome; otherwise
/// the job returns to the front of the queue. Either way no admitted
/// request is silently dropped by a recovery.
#[derive(Debug)]
pub(crate) struct Inflight {
    pub epoch: usize,
    pub mode: ServeMode,
    pub job: Job,
}

/// All shared state of one tenant.
pub(crate) struct TenantShared {
    pub name: String,
    pub spec: ScenarioSpec,
    /// Submit-side validation data, copied out of the session so the
    /// admission path never contends on the session lock.
    pub net: Network,
    pub max_objects: usize,
    pub queue: Mutex<QueueState>,
    pub not_empty: Condvar,
    pub mode: Mutex<ServeMode>,
    /// `None` only between a crash and the completed recovery.
    pub session: Mutex<Option<Session>>,
    pub journal: Mutex<Vec<JournalEntry>>,
    pub inflight: Mutex<Option<Inflight>>,
    pub metrics: Mutex<TenantMetrics>,
    /// Durable checkpoints on disk, oldest first: `(epoch, path)`.
    pub checkpoints: Mutex<Vec<(usize, PathBuf)>>,
    /// Serializes whole supervision steps (checkpoint, recovery) on
    /// this tenant: the watchdog and explicit `*_now` calls would
    /// otherwise interleave snapshot-then-record sequences and rotate
    /// the retention list out of epoch order.
    pub supervise: Mutex<()>,
}

/// Pop the next command, blocking on the condvar while the queue is
/// empty. Returns `None` when the queue is drained and shutting down.
fn pop_command(shared: &TenantShared) -> Option<Command> {
    let mut q = relock(&shared.queue);
    loop {
        if let Some(cmd) = q.q.pop_front() {
            if matches!(cmd, Command::Job(_)) {
                q.jobs -= 1;
            }
            return Some(cmd);
        }
        if q.shutting_down {
            return None;
        }
        q = shared.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
    }
}

/// The worker loop: pop → shed expired deadlines → pick the serve mode
/// by queue-depth hysteresis → serve through the session → journal →
/// respond.
pub(crate) fn worker_loop(shared: Arc<TenantShared>, cfg: Arc<ServerConfig>) {
    loop {
        let cmd = match pop_command(&shared) {
            Some(cmd) => cmd,
            None => return,
        };
        let job = match cmd {
            Command::Shutdown => return,
            Command::Crash => panic!("injected crash in tenant {}", shared.name),
            Command::Job(job) => job,
        };

        // Shed without serving if the client's deadline already passed.
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                relock(&shared.metrics).deadline_shed += 1;
                let _ = job.resp.send(Err(Rejected::DeadlineExpired));
                continue;
            }
        }

        // Hysteresis: degrade at the high-water mark, restore exact
        // replay only once drained to the low-water mark.
        let depth = relock(&shared.queue).jobs;
        let mode = {
            let mut mode = relock(&shared.mode);
            *mode = if depth >= cfg.high_water {
                ServeMode::Degraded
            } else if depth <= cfg.low_water {
                ServeMode::Exact
            } else {
                *mode
            };
            *mode
        };

        let (epoch, result) = {
            let mut slot = relock(&shared.session);
            let sess = slot.as_mut().expect("worker running without a session");
            sess.set_replay_override(mode.kernel(cfg.degraded_sample_every));
            let epoch = sess.epoch_index();
            // Stash the job before the fallible serve; see [`Inflight`].
            *relock(&shared.inflight) = Some(Inflight { epoch, mode, job: job.clone() });
            (epoch, sess.push_epoch(&job.batch))
        };

        match result {
            Ok(summary) => {
                relock(&shared.journal).push(JournalEntry {
                    epoch,
                    mode,
                    batch: job.batch.clone(),
                });
                {
                    let mut m = relock(&shared.metrics);
                    m.served += 1;
                    if mode == ServeMode::Degraded {
                        m.degraded_epochs += 1;
                    }
                    m.ingest_micros.push(job.enqueued_at.elapsed().as_micros() as u64);
                }
                *relock(&shared.inflight) = None;
                let _ =
                    job.resp.send(Ok(EpochOutcome { epoch, mode, queue_depth: depth, summary }));
            }
            Err(e) => {
                *relock(&shared.inflight) = None;
                let _ = job.resp.send(Err(Rejected::Replay(e)));
            }
        }
    }
}
