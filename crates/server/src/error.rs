//! Error types of the service layer.
//!
//! Two families: [`Rejected`] is the *per-request* outcome a client
//! sees on its [`crate::Ticket`] when a submission does not produce an
//! epoch, and [`ServerError`] is the *control-plane* failure of an
//! operation on the server itself (checkpointing, recovery, shutdown).
//! Both implement [`std::error::Error`] with `source()` chaining into
//! the underlying [`SimError`] / [`RestoreError`], so binaries compose
//! them with `Box<dyn Error>` and `?`.

use hbn_scenario::RestoreError;
use hbn_sim::SimError;
use std::error::Error;
use std::fmt;

/// Why a submitted request did not produce a served epoch.
#[derive(Debug)]
pub enum Rejected {
    /// Admission control: the tenant's bounded ingest queue is at
    /// capacity. Back off and retry.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// Queue depth observed at rejection (== the configured
        /// capacity).
        depth: usize,
    },
    /// The request's deadline had already expired when a worker popped
    /// it — shed without serving.
    DeadlineExpired,
    /// No tenant with this name is registered.
    UnknownTenant(String),
    /// The batch failed submit-side validation against the tenant's
    /// topology (bad object id or non-processor node); admitting it
    /// would crash-loop the worker.
    InvalidRequest(String),
    /// The server is shutting down and admits no new work.
    ShuttingDown,
    /// The owning worker died before serving this request and the
    /// request could not be recovered (e.g. shutdown raced a crash).
    WorkerLost,
    /// The replay kernel itself failed on this batch.
    Replay(SimError),
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant}: ingest queue full at depth {depth}")
            }
            Rejected::DeadlineExpired => {
                f.write_str("deadline expired before the epoch was served")
            }
            Rejected::UnknownTenant(name) => write!(f, "unknown tenant {name}"),
            Rejected::InvalidRequest(why) => write!(f, "invalid request batch: {why}"),
            Rejected::ShuttingDown => f.write_str("server is shutting down"),
            Rejected::WorkerLost => f.write_str("tenant worker died before serving the request"),
            Rejected::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl Error for Rejected {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Rejected::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for Rejected {
    fn from(e: SimError) -> Rejected {
        Rejected::Replay(e)
    }
}

/// A control-plane operation on the server failed.
#[derive(Debug)]
pub enum ServerError {
    /// No tenant with this name is registered.
    UnknownTenant(String),
    /// Writing or reading a durable checkpoint failed.
    Checkpoint(RestoreError),
    /// Recovery exhausted every durable checkpoint (and the journal)
    /// without reconstructing the tenant; its state is gone.
    TenantLost {
        /// The unrecoverable tenant.
        tenant: String,
        /// What the last recovery attempt failed with.
        why: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant {name}"),
            ServerError::Checkpoint(e) => write!(f, "checkpoint I/O failed: {e}"),
            ServerError::TenantLost { tenant, why } => {
                write!(f, "tenant {tenant} unrecoverable: {why}")
            }
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RestoreError> for ServerError {
    fn from(e: RestoreError) -> ServerError {
        ServerError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_compose_with_dyn_error() {
        fn fails() -> Result<(), Box<dyn Error>> {
            Err(Rejected::DeadlineExpired)?
        }
        let e = fails().unwrap_err();
        assert!(e.to_string().contains("deadline expired"));

        let chained = Rejected::Replay(SimError::SlotBudgetExceeded);
        assert!(chained.source().is_some());
        assert!(chained.to_string().contains("replay failed"));

        let lost = ServerError::TenantLost { tenant: "t0".into(), why: "all bad".into() };
        assert!(lost.to_string().contains("t0"));
        assert!(lost.source().is_none());
    }
}
