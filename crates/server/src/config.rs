//! Server tuning knobs.

use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a [`crate::Server`].
///
/// The admission marks form a hysteresis band: a tenant degrades to
/// estimator replay when its queue depth reaches `high_water` and
/// returns to exact replay only once the depth falls back to
/// `low_water`, so a queue oscillating around one mark does not flap
/// between modes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound of each tenant's ingest queue; submissions beyond it get
    /// [`crate::Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Queue depth at which a tenant degrades to estimator replay.
    pub high_water: usize,
    /// Queue depth at which a degraded tenant restores exact replay.
    pub low_water: usize,
    /// `sample_every` of the degraded kernel
    /// ([`hbn_scenario::ReplayKernel::Estimate`]); `0` = bounds only,
    /// the cheapest shedding mode.
    pub degraded_sample_every: usize,
    /// Directory for durable tenant checkpoints.
    pub checkpoint_dir: PathBuf,
    /// Watchdog cadence: how often tenants are snapshotted and crashed
    /// workers detected. Longer cadence = cheaper steady state but a
    /// longer journal tail to replay on recovery.
    pub watchdog_poll: Duration,
    /// Durable checkpoints kept per tenant (newest N); the journal is
    /// truncated below the oldest retained one, so a corrupt newest
    /// checkpoint can still fall back.
    pub checkpoints_retained: usize,
}

impl ServerConfig {
    /// Defaults sized for tests and small deployments: capacity 64,
    /// high/low water 8/2, unsampled estimator shedding, 20 ms watchdog
    /// cadence, two retained checkpoints.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            queue_capacity: 64,
            high_water: 8,
            low_water: 2,
            degraded_sample_every: 0,
            checkpoint_dir: checkpoint_dir.into(),
            watchdog_poll: Duration::from_millis(20),
            checkpoints_retained: 2,
        }
    }
}
