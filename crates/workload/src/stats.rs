//! Aggregate workload statistics used in experiment reports.

use crate::freq::AccessMatrix;
use crate::objects::ObjectId;
use serde::{Deserialize, Serialize};

/// Per-object summary: weights and contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectStats {
    /// The object.
    pub object: ObjectId,
    /// Total requests `h_x`.
    pub total_weight: u64,
    /// Total reads.
    pub reads: u64,
    /// Write contention `κ_x`.
    pub write_contention: u64,
    /// Number of distinct requesting processors.
    pub n_requesters: usize,
}

/// Whole-workload summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// One row per object, in object-id order.
    pub objects: Vec<ObjectStats>,
    /// Grand total of requests.
    pub grand_total: u64,
    /// Maximum write contention over all objects (`κ_max`).
    pub max_write_contention: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
}

/// Compute summary statistics of `m`.
pub fn workload_stats(m: &AccessMatrix) -> WorkloadStats {
    let objects: Vec<ObjectStats> = m
        .objects()
        .map(|x| ObjectStats {
            object: x,
            total_weight: m.total_weight(x),
            reads: m.total_reads(x),
            write_contention: m.write_contention(x),
            n_requesters: m.object_entries(x).len(),
        })
        .collect();
    let grand_total: u64 = objects.iter().map(|o| o.total_weight).sum();
    let total_writes: u64 = objects.iter().map(|o| o.write_contention).sum();
    let max_write_contention = objects.iter().map(|o| o.write_contention).max().unwrap_or(0);
    WorkloadStats {
        objects,
        grand_total,
        max_write_contention,
        write_fraction: if grand_total == 0 {
            0.0
        } else {
            total_writes as f64 / grand_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::NodeId;

    #[test]
    fn stats_of_small_workload() {
        let mut m = AccessMatrix::new(2);
        m.add(NodeId(1), ObjectId(0), 4, 1);
        m.add(NodeId(2), ObjectId(0), 0, 3);
        m.add(NodeId(1), ObjectId(1), 2, 0);
        let s = workload_stats(&m);
        assert_eq!(s.grand_total, 10);
        assert_eq!(s.max_write_contention, 4);
        assert_eq!(s.objects[0].n_requesters, 2);
        assert_eq!(s.objects[1].write_contention, 0);
        assert!((s.write_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_workload() {
        let m = AccessMatrix::new(3);
        let s = workload_stats(&m);
        assert_eq!(s.grand_total, 0);
        assert_eq!(s.write_fraction, 0.0);
        assert_eq!(s.objects.len(), 3);
    }
}

#[cfg(test)]
mod distribution_tests {
    use super::*;
    use crate::generators::{shared_write, zipf_read_mostly};
    use hbn_topology::generators::{balanced, BandwidthProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_stats_reflect_skew() {
        let net = balanced(3, 2, BandwidthProfile::Uniform);
        let mut rng = StdRng::seed_from_u64(77);
        let m = zipf_read_mostly(&net, 20, 5000, 1.2, 0.2, &mut rng);
        let s = workload_stats(&m);
        assert_eq!(s.grand_total, 5000);
        // Rank 0 should dominate the tail under strong skew.
        let first = s.objects[0].total_weight;
        let last = s.objects.last().unwrap().total_weight;
        assert!(first > 4 * last.max(1), "skew not visible: {first} vs {last}");
        assert!((0.1..0.35).contains(&s.write_fraction));
    }

    #[test]
    fn shared_write_stats_are_uniform() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let m = shared_write(&net, 3, 2, 5);
        let s = workload_stats(&m);
        for o in &s.objects {
            assert_eq!(o.write_contention, 5 * net.n_processors() as u64);
            assert_eq!(o.n_requesters, net.n_processors());
        }
        assert_eq!(s.max_write_contention, 5 * net.n_processors() as u64);
    }
}
