//! Open-loop arrival processes for service-layer load generation.
//!
//! A closed-loop client waits for each response before issuing the next
//! request, so an overloaded server silently throttles its own load
//! generator and overload never shows. An *open-loop* generator draws
//! arrival times from a Poisson process at a fixed offered rate,
//! independent of how the server is coping — the standard way to
//! measure goodput-vs-offered-load and to expose congestion collapse.
//!
//! [`OpenLoopArrivals`] is seed-deterministic (same seed, same rate →
//! the identical arrival sequence), so load experiments replay exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded Poisson arrival process: exponential inter-arrival gaps at
/// a fixed `rate` (arrivals per unit of virtual time), drawn by inverse
/// transform from the deterministic RNG stream.
///
/// ```
/// use hbn_workload::OpenLoopArrivals;
///
/// let mut a = OpenLoopArrivals::new(7, 1000.0); // 1000 users per unit time
/// let mut b = OpenLoopArrivals::new(7, 1000.0);
/// // Deterministic: the same seed yields the same arrival sequence.
/// assert_eq!(a.next_arrival(), b.next_arrival());
/// // Arrival times are non-decreasing.
/// let (t1, t2) = (a.next_arrival(), a.next_arrival());
/// assert!(t1 <= t2);
/// // Tick-batched draws count the same process: ~1000 arrivals in one
/// // unit of virtual time.
/// let n = b.arrivals_until(1.0);
/// assert!((700..1300).contains(&n));
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoopArrivals {
    rng: StdRng,
    mean_gap: f64,
    rate: f64,
    /// Virtual time of the next arrival not yet delivered.
    next: f64,
}

impl OpenLoopArrivals {
    /// An arrival process at `rate` arrivals per unit of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(seed: u64, rate: f64) -> OpenLoopArrivals {
        assert!(rate.is_finite() && rate > 0.0, "arrival rate must be positive, got {rate}");
        let mut arrivals = OpenLoopArrivals {
            rng: StdRng::seed_from_u64(seed),
            mean_gap: 1.0 / rate,
            rate,
            next: 0.0,
        };
        arrivals.next = arrivals.gap();
        arrivals
    }

    /// The offered rate this process was built with.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// One exponential inter-arrival gap, `Exp(rate)` by inverse
    /// transform. `gen::<f64>()` is uniform in `[0, 1)`, so `1 - u` is
    /// in `(0, 1]` and the logarithm is always finite.
    fn gap(&mut self) -> f64 {
        let u: f64 = self.rng.gen();
        -(1.0 - u).ln() * self.mean_gap
    }

    /// Virtual time of the next arrival, consuming it.
    pub fn next_arrival(&mut self) -> f64 {
        let t = self.next;
        self.next += self.gap();
        t
    }

    /// Virtual time of the next arrival without consuming it.
    pub fn peek_arrival(&self) -> f64 {
        self.next
    }

    /// Count (and consume) every arrival with time `<= t` — the batch a
    /// tick-driven load generator offers in the tick ending at `t`.
    pub fn arrivals_until(&mut self, t: f64) -> usize {
        let mut n = 0;
        while self.next <= t {
            self.next_arrival();
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_monotone() {
        let mut a = OpenLoopArrivals::new(11, 50.0);
        let mut b = OpenLoopArrivals::new(11, 50.0);
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = a.next_arrival();
            assert_eq!(t, b.next_arrival());
            assert!(t >= prev, "arrival times must be non-decreasing");
            assert!(t.is_finite());
            prev = t;
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = OpenLoopArrivals::new(1, 50.0);
        let mut b = OpenLoopArrivals::new(2, 50.0);
        let diverged = (0..32).any(|_| a.next_arrival() != b.next_arrival());
        assert!(diverged);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        for rate in [10.0, 400.0] {
            let mut arrivals = OpenLoopArrivals::new(23, rate);
            let n = 20_000;
            let mut last = 0.0;
            for _ in 0..n {
                last = arrivals.next_arrival();
            }
            let empirical_rate = n as f64 / last;
            assert!(
                (empirical_rate - rate).abs() < rate * 0.1,
                "empirical rate {empirical_rate} vs offered {rate}"
            );
        }
    }

    #[test]
    fn tick_counts_match_the_arrival_sequence() {
        let mut by_tick = OpenLoopArrivals::new(5, 100.0);
        let mut by_event = OpenLoopArrivals::new(5, 100.0);
        let mut counted = 0usize;
        for tick in 1..=50 {
            counted += by_tick.arrivals_until(tick as f64 * 0.1);
        }
        let mut direct = 0usize;
        while by_event.peek_arrival() <= 5.0 {
            by_event.next_arrival();
            direct += 1;
        }
        assert_eq!(counted, direct);
        assert!(counted > 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_is_refused() {
        let _ = OpenLoopArrivals::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn negative_rate_is_refused() {
        let _ = OpenLoopArrivals::new(0, -2.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn nan_rate_is_refused() {
        let _ = OpenLoopArrivals::new(0, f64::NAN);
    }

    /// Sub-1-per-epoch rates: most unit-length ticks see zero arrivals,
    /// but the tick-batched counts still reconstruct the exact arrival
    /// sequence and the long-run rate.
    #[test]
    fn sub_one_per_epoch_rates_count_correctly() {
        let rate = 0.3;
        let mut by_tick = OpenLoopArrivals::new(71, rate);
        let mut by_event = OpenLoopArrivals::new(71, rate);
        let horizon = 1000usize;
        let mut counts = Vec::with_capacity(horizon);
        for tick in 1..=horizon {
            counts.push(by_tick.arrivals_until(tick as f64));
        }
        let empty_ticks = counts.iter().filter(|&&n| n == 0).count();
        assert!(empty_ticks > horizon / 2, "rate 0.3 must leave most ticks empty");
        let total: usize = counts.iter().sum();
        let mut direct = 0usize;
        while by_event.peek_arrival() <= horizon as f64 {
            by_event.next_arrival();
            direct += 1;
        }
        assert_eq!(total, direct);
        let empirical = total as f64 / horizon as f64;
        assert!((empirical - rate).abs() < rate * 0.3, "empirical {empirical} vs offered {rate}");
    }

    /// The checkpoint/restore contract: a clone of the process taken
    /// mid-stream is the arrival cursor a restored session resumes
    /// from, and it must replay the identical suffix bit-for-bit.
    #[test]
    fn cloned_cursor_resumes_bit_for_bit() {
        let mut live = OpenLoopArrivals::new(13, 7.5);
        for _ in 0..500 {
            live.next_arrival();
        }
        let mut restored = live.clone();
        assert_eq!(live.peek_arrival().to_bits(), restored.peek_arrival().to_bits());
        for i in 0..2000 {
            let a = live.next_arrival();
            let b = restored.next_arrival();
            assert_eq!(a.to_bits(), b.to_bits(), "arrival {i} diverged after restore");
        }
        // Mixing draw styles keeps the cursors aligned too.
        let n = live.arrivals_until(live.peek_arrival() + 3.0);
        let m = restored.arrivals_until(restored.peek_arrival() + 3.0);
        assert_eq!(n, m);
        assert_eq!(live.peek_arrival().to_bits(), restored.peek_arrival().to_bits());
    }
}
