//! Phase schedules: online access patterns that *shift over time*.
//!
//! The static generators in [`crate::generators`] describe one frequency
//! matrix; real traffic (parallel-program globals, VSM pages, WWW pages —
//! the paper's motivating workloads) moves through regimes: popularity is
//! skewed, hotspots migrate between processors, load arrives in bursts,
//! read/write mixes flip, objects are created and deleted. A
//! [`PhaseSchedule`] strings such regimes together and a [`PhaseStream`]
//! turns it into an *online* request sequence, one request at a time, so
//! arbitrarily long scenarios never materialize a full trace.
//!
//! Every stream is deterministic given the schedule, the network and a
//! `u64` seed, and emits exactly [`PhaseSpec::requests`] requests per
//! phase; churn phases retire live objects and mint fresh ids, and a
//! retired object is never referenced again (asserted by the test suite
//! and relied on by the scenario engine).
//!
//! ```
//! use hbn_topology::generators::{balanced, BandwidthProfile};
//! use hbn_workload::phases::{PhaseKind, PhaseSchedule, PhaseSpec};
//!
//! let net = balanced(3, 2, BandwidthProfile::Uniform);
//! let schedule = PhaseSchedule::new(
//!     8,
//!     vec![
//!         PhaseSpec::new("warm", PhaseKind::StaticZipf { skew: 0.9, write_fraction: 0.1 }, 100),
//!         PhaseSpec::new("churn", PhaseKind::ObjectChurn { churn_every: 25, skew: 0.9, write_fraction: 0.3 }, 100),
//!     ],
//! );
//! let requests: Vec<_> = schedule.stream(&net, 7).collect();
//! assert_eq!(requests.len(), schedule.total_requests());
//! // `max_objects()` budgets one churn insertion per `churn_every`
//! // requests (100/25 = 4 on top of the 8 initial objects), an upper
//! // bound on the ids the stream can mint — the phase itself fires three
//! // events, at requests 25, 50 and 75 (the i = 0 boundary never churns).
//! assert_eq!(schedule.max_objects(), 12);
//! ```

use crate::freq::AccessMatrix;
use crate::generators::Zipf;
use crate::objects::ObjectId;
use hbn_topology::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request of an online phase stream.
///
/// The same triple as the simulator's trace requests and the dynamic
/// strategy's online requests; the scenario engine converts as it routes
/// the stream through both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRequest {
    /// The issuing processor (a leaf of the network).
    pub processor: NodeId,
    /// The accessed object.
    pub object: ObjectId,
    /// `true` for writes.
    pub is_write: bool,
}

/// An access-pattern family governing one phase of a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// Stationary WWW-style traffic: object popularity is Zipf(`skew`)
    /// over the live objects, requesting processors are uniform, and a
    /// `write_fraction` of requests are writes.
    StaticZipf {
        /// Zipf exponent of the popularity ranking (`0` = uniform).
        skew: f64,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// A hot working set pinned to a *home* processor that migrates
    /// through the machine — the VSM page-migration regime.
    HotspotMigration {
        /// Size of the hot object set (clamped to the live set).
        hot_objects: usize,
        /// Probability that a request targets the hot set from the home.
        hot_fraction: f64,
        /// Requests between home migrations (`0` disables migration).
        migrate_every: usize,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Bursty traffic: each burst picks a small object subset and one
    /// requesting processor, hammers them, then moves on.
    Bursty {
        /// Requests per burst (≥ 1).
        burst_len: usize,
        /// Objects touched per burst (clamped to the live set).
        burst_objects: usize,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Read-heavy / write-heavy flips: the write fraction alternates
    /// between two levels every `flip_every` requests (starting with
    /// `read_writes`), while popularity stays Zipf(`skew`).
    MixFlip {
        /// Requests between flips (≥ 1).
        flip_every: usize,
        /// Write fraction of the read-heavy half-cycles.
        read_writes: f64,
        /// Write fraction of the write-heavy half-cycles.
        write_writes: f64,
        /// Zipf exponent of the popularity ranking.
        skew: f64,
    },
    /// Object churn: every `churn_every` requests one uniformly random
    /// live object is retired (never referenced again) and a fresh object
    /// id is minted in its place.
    ObjectChurn {
        /// Requests between churn events (≥ 1).
        churn_every: usize,
        /// Zipf exponent of the popularity ranking over live objects.
        skew: f64,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Adversarial single-bus saturation: requesters alternate between
    /// two processor groups on opposite sides of one bus, over a small
    /// object set, so every replication and write broadcast crosses that
    /// bus.
    SingleBusSaturation {
        /// Probability that a request is a write (high values force the
        /// read-replicate / write-collapse ping-pong).
        write_fraction: f64,
        /// Objects in the contended set (clamped to the live set).
        contended_objects: usize,
    },
}

/// One phase: a labelled access-pattern family and a request volume.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Human-readable phase label (reported in scenario summaries).
    pub label: String,
    /// The access-pattern family.
    pub kind: PhaseKind,
    /// Exact number of requests this phase emits.
    pub requests: usize,
}

impl PhaseSpec {
    /// A phase emitting `requests` requests of pattern `kind`.
    pub fn new(label: impl Into<String>, kind: PhaseKind, requests: usize) -> Self {
        PhaseSpec { label: label.into(), kind, requests }
    }

    /// Number of churn events (object deletions/insertions) this phase
    /// performs.
    pub fn churn_events(&self) -> usize {
        match self.kind {
            PhaseKind::ObjectChurn { churn_every, .. } if churn_every > 0 => {
                self.requests / churn_every
            }
            _ => 0,
        }
    }
}

/// A declarative multi-phase access pattern over a growing object space.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    /// Objects live at the start of the schedule (ids `0..initial_objects`).
    pub initial_objects: usize,
    /// The phases, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl PhaseSchedule {
    /// A schedule starting from `initial_objects ≥ 1` live objects.
    pub fn new(initial_objects: usize, phases: Vec<PhaseSpec>) -> Self {
        assert!(initial_objects >= 1, "a schedule needs at least one live object");
        PhaseSchedule { initial_objects, phases }
    }

    /// Total requests the schedule emits.
    pub fn total_requests(&self) -> usize {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Upper bound on the number of distinct object ids the stream can
    /// reference: the initial set plus every churn insertion. Size
    /// strategy/placement state (`DynamicTree::new`, `AccessMatrix::new`)
    /// with this.
    pub fn max_objects(&self) -> usize {
        self.initial_objects + self.phases.iter().map(PhaseSpec::churn_events).sum::<usize>()
    }

    /// The streaming request source for this schedule on `net`,
    /// deterministic in `seed`.
    pub fn stream<'a>(&'a self, net: &'a Network, seed: u64) -> PhaseStream<'a> {
        PhaseStream::new(self, net, seed)
    }

    /// The owned cursor form of [`PhaseSchedule::stream`]: a cloneable
    /// [`PhaseStreamState`] that borrows nothing, for callers that own the
    /// schedule and network themselves (e.g. a resumable scenario
    /// session). Draw requests with [`PhaseStreamState::next_request`].
    pub fn stream_state(&self, net: &Network, seed: u64) -> PhaseStreamState {
        PhaseStreamState::new(self, net, seed)
    }

    /// Aggregate the whole stream into the read/write frequency matrix
    /// `h_r, h_w` — the hindsight view a static placement would be
    /// computed from. Materializes counts, not the trace.
    pub fn matrix(&self, net: &Network, seed: u64) -> AccessMatrix {
        let mut m = AccessMatrix::new(self.max_objects());
        for r in self.stream(net, seed) {
            if r.is_write {
                m.add(r.processor, r.object, 0, 1);
            } else {
                m.add(r.processor, r.object, 1, 0);
            }
        }
        m
    }
}

/// Per-phase sampling state, rebuilt when the stream enters a phase.
#[derive(Debug, Clone)]
enum PhaseState {
    Zipf {
        zipf: Zipf,
        write_fraction: f64,
    },
    Hotspot {
        zipf: Zipf,
        hot: usize,
        hot_fraction: f64,
        migrate_every: usize,
        write_fraction: f64,
        home: usize,
    },
    Bursty {
        burst_len: usize,
        burst_objects: usize,
        write_fraction: f64,
        // Current burst: live-set indices and the requesting processor.
        objects: Vec<usize>,
        processor: usize,
        emitted: usize,
    },
    MixFlip {
        zipf: Zipf,
        flip_every: usize,
        read_writes: f64,
        write_writes: f64,
    },
    Churn {
        zipf: Zipf,
        churn_every: usize,
        write_fraction: f64,
    },
    SingleBus {
        write_fraction: f64,
        contended: Vec<usize>,
        // Processor groups on opposite sides of the saturated bus.
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        emitted: usize,
    },
}

/// Streaming request source of a [`PhaseSchedule`]: an iterator over
/// [`PhaseRequest`]s that holds only O(live objects) state.
///
/// A thin borrowing wrapper around [`PhaseStreamState`] — the owned,
/// cloneable cursor — so the ergonomic `schedule.stream(net, seed)`
/// iterator and the resumable cursor share one implementation.
#[derive(Debug)]
pub struct PhaseStream<'a> {
    schedule: &'a PhaseSchedule,
    net: &'a Network,
    state: PhaseStreamState,
}

impl<'a> PhaseStream<'a> {
    fn new(schedule: &'a PhaseSchedule, net: &'a Network, seed: u64) -> Self {
        PhaseStream { schedule, net, state: PhaseStreamState::new(schedule, net, seed) }
    }

    /// Index of the current phase (advances as the stream crosses a
    /// phase boundary while emitting).
    pub fn phase_index(&self) -> usize {
        self.state.phase_index()
    }

    /// Object ids currently live (churn mutates this set).
    pub fn live_objects(&self) -> &[ObjectId] {
        self.state.live_objects()
    }

    /// Object ids retired by churn so far, in retirement order.
    pub fn retired_objects(&self) -> &[ObjectId] {
        self.state.retired_objects()
    }

    /// The underlying owned cursor (e.g. to snapshot mid-iteration).
    pub fn state(&self) -> &PhaseStreamState {
        &self.state
    }

    /// Unwrap into the owned cursor, keeping the exact position.
    pub fn into_state(self) -> PhaseStreamState {
        self.state
    }
}

/// The owned cursor of a phase stream: the RNG position, the live/retired
/// object sets and the per-phase sampling state, with no borrow of the
/// schedule or network. Cloning it snapshots the stream position exactly
/// — two clones driven forward with the same `(schedule, net)` emit
/// identical suffixes, which is what makes scenario sessions resumable.
///
/// Every method that advances the cursor takes the schedule and network
/// explicitly; callers must pass the same pair the cursor was created
/// with (the cursor indexes into both).
#[derive(Debug, Clone)]
pub struct PhaseStreamState {
    rng: StdRng,
    /// Live object ids; churn replaces entries in place.
    live: Vec<ObjectId>,
    /// Retired object ids, in retirement order.
    retired: Vec<ObjectId>,
    next_object: u32,
    phase_idx: usize,
    emitted_in_phase: usize,
    state: Option<PhaseState>,
}

impl PhaseStreamState {
    /// A cursor at the start of `schedule`, deterministic in `seed` —
    /// the owned form of [`PhaseSchedule::stream`].
    pub fn new(schedule: &PhaseSchedule, net: &Network, seed: u64) -> Self {
        assert!(net.n_processors() >= 2, "phase streams need at least two processors");
        let mut s = PhaseStreamState {
            rng: StdRng::seed_from_u64(seed),
            live: (0..schedule.initial_objects as u32).map(ObjectId).collect(),
            retired: Vec::new(),
            next_object: schedule.initial_objects as u32,
            phase_idx: 0,
            emitted_in_phase: 0,
            state: None,
        };
        s.enter_phase(schedule, net);
        s
    }

    /// Emit the next request, or `None` once the schedule is exhausted.
    /// `schedule` and `net` must be the pair the cursor was created with.
    pub fn next_request(
        &mut self,
        schedule: &PhaseSchedule,
        net: &Network,
    ) -> Option<PhaseRequest> {
        loop {
            let phase = schedule.phases.get(self.phase_idx)?;
            if self.emitted_in_phase >= phase.requests {
                self.phase_idx += 1;
                self.emitted_in_phase = 0;
                self.enter_phase(schedule, net);
                continue;
            }
            let req = self.emit(net);
            self.emitted_in_phase += 1;
            return Some(req);
        }
    }

    /// Requests left before the schedule is exhausted.
    pub fn remaining(&self, schedule: &PhaseSchedule) -> usize {
        schedule
            .phases
            .iter()
            .skip(self.phase_idx)
            .map(|p| p.requests)
            .sum::<usize>()
            .saturating_sub(self.emitted_in_phase)
    }

    /// Index of the current phase (advances as the cursor crosses a
    /// phase boundary while emitting).
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    /// Object ids currently live (churn mutates this set).
    pub fn live_objects(&self) -> &[ObjectId] {
        &self.live
    }

    /// Object ids retired by churn so far, in retirement order.
    pub fn retired_objects(&self) -> &[ObjectId] {
        &self.retired
    }

    /// Build the sampling state for the phase at `phase_idx` (no-op past
    /// the last phase).
    fn enter_phase(&mut self, schedule: &PhaseSchedule, net: &Network) {
        let Some(phase) = schedule.phases.get(self.phase_idx) else {
            self.state = None;
            return;
        };
        let n_live = self.live.len();
        let procs = net.processors();
        self.state = Some(match phase.kind {
            PhaseKind::StaticZipf { skew, write_fraction } => {
                PhaseState::Zipf { zipf: Zipf::new(n_live, skew), write_fraction }
            }
            PhaseKind::HotspotMigration {
                hot_objects,
                hot_fraction,
                migrate_every,
                write_fraction,
            } => PhaseState::Hotspot {
                zipf: Zipf::new(n_live, 1.0),
                hot: hot_objects.clamp(1, n_live),
                hot_fraction,
                migrate_every,
                write_fraction,
                home: self.rng.gen_range(0..procs.len()),
            },
            PhaseKind::Bursty { burst_len, burst_objects, write_fraction } => PhaseState::Bursty {
                burst_len: burst_len.max(1),
                burst_objects: burst_objects.clamp(1, n_live),
                write_fraction,
                objects: Vec::new(),
                processor: 0,
                emitted: 0,
            },
            PhaseKind::MixFlip { flip_every, read_writes, write_writes, skew } => {
                PhaseState::MixFlip {
                    zipf: Zipf::new(n_live, skew),
                    flip_every: flip_every.max(1),
                    read_writes,
                    write_writes,
                }
            }
            PhaseKind::ObjectChurn { churn_every, skew, write_fraction } => PhaseState::Churn {
                zipf: Zipf::new(n_live, skew),
                churn_every: churn_every.max(1),
                write_fraction,
            },
            PhaseKind::SingleBusSaturation { write_fraction, contended_objects } => {
                let (side_a, side_b) = split_bus_sides(net);
                let k = contended_objects.clamp(1, n_live);
                PhaseState::SingleBus {
                    write_fraction,
                    contended: (0..k).collect(),
                    side_a,
                    side_b,
                    emitted: 0,
                }
            }
        });
    }

    /// Emit the next request of the current phase. `self.state` is the
    /// matching variant for the schedule phase at `self.phase_idx`.
    fn emit(&mut self, net: &Network) -> PhaseRequest {
        let procs = net.processors();
        let i = self.emitted_in_phase;
        let state = self.state.as_mut().expect("emit called with an active phase");
        match state {
            PhaseState::Zipf { zipf, write_fraction } => {
                let object = self.live[zipf.sample(&mut self.rng)];
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::Hotspot {
                zipf,
                hot,
                hot_fraction,
                migrate_every,
                write_fraction,
                home,
            } => {
                if *migrate_every > 0 && i > 0 && i.is_multiple_of(*migrate_every) {
                    // The working set moves: pick a fresh home processor.
                    let next = self.rng.gen_range(0..procs.len() - 1);
                    *home = if next >= *home { next + 1 } else { next };
                }
                let is_write = self.rng.gen_bool(write_fraction.clamp(0.0, 1.0));
                if self.rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    let object = self.live[self.rng.gen_range(0..*hot)];
                    PhaseRequest { processor: procs[*home], object, is_write }
                } else {
                    let object = self.live[zipf.sample(&mut self.rng)];
                    PhaseRequest {
                        processor: procs[self.rng.gen_range(0..procs.len())],
                        object,
                        is_write,
                    }
                }
            }
            PhaseState::Bursty {
                burst_len,
                burst_objects,
                write_fraction,
                objects,
                processor,
                emitted,
            } => {
                if *emitted % *burst_len == 0 {
                    // Start a new burst: fresh object subset, fresh source.
                    objects.clear();
                    for _ in 0..*burst_objects {
                        objects.push(self.rng.gen_range(0..self.live.len()));
                    }
                    *processor = self.rng.gen_range(0..procs.len());
                }
                let object = self.live[objects[*emitted % objects.len()]];
                *emitted += 1;
                PhaseRequest {
                    processor: procs[*processor],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::MixFlip { zipf, flip_every, read_writes, write_writes } => {
                let write_fraction =
                    if (i / *flip_every).is_multiple_of(2) { *read_writes } else { *write_writes };
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object: self.live[zipf.sample(&mut self.rng)],
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::Churn { zipf, churn_every, write_fraction } => {
                if i > 0 && i.is_multiple_of(*churn_every) {
                    // Retire one uniformly random live object and mint a
                    // fresh id in its slot; the retired id never recurs.
                    let slot = self.rng.gen_range(0..self.live.len());
                    self.retired.push(self.live[slot]);
                    self.live[slot] = ObjectId(self.next_object);
                    self.next_object += 1;
                }
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object: self.live[zipf.sample(&mut self.rng)],
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::SingleBus { write_fraction, contended, side_a, side_b, emitted } => {
                // Alternate sides so every consecutive pair of requests on
                // an object straddles the bus.
                let side = if *emitted % 2 == 0 { &*side_a } else { &*side_b };
                let object = self.live[contended[(*emitted / 2) % contended.len()]];
                *emitted += 1;
                PhaseRequest {
                    processor: side[self.rng.gen_range(0..side.len())],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
        }
    }
}

/// Split the processors across the most balanced bus: the two child
/// subtrees with the most processors on each side. Falls back to an
/// even split of the processor list on degenerate trees.
fn split_bus_sides(net: &Network) -> (Vec<NodeId>, Vec<NodeId>) {
    let procs = net.processors();
    let mut best: Option<(usize, Vec<NodeId>, Vec<NodeId>)> = None;
    for bus in net.nodes().filter(|&v| net.is_bus(v)) {
        // Group the processors by their first hop away from `bus`.
        let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &p in procs {
            if p == bus {
                continue;
            }
            let hop = net.step_towards(bus, p);
            match groups.iter_mut().find(|(h, _)| *h == hop) {
                Some((_, g)) => g.push(p),
                None => groups.push((hop, vec![p])),
            }
        }
        if groups.len() < 2 {
            continue;
        }
        groups.sort_by_key(|(_, g)| std::cmp::Reverse(g.len()));
        let score = groups[0].1.len().min(groups[1].1.len());
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            let b = groups.swap_remove(1).1;
            let a = groups.swap_remove(0).1;
            best = Some((score, a, b));
        }
    }
    match best {
        Some((_, a, b)) => (a, b),
        None => {
            let mid = procs.len() / 2;
            (procs[..mid].to_vec(), procs[mid..].to_vec())
        }
    }
}

impl Iterator for PhaseStream<'_> {
    type Item = PhaseRequest;

    fn next(&mut self) -> Option<PhaseRequest> {
        self.state.next_request(self.schedule, self.net)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.state.remaining(self.schedule);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PhaseStream<'_> {}

/// A ready-made six-phase schedule touring every [`PhaseKind`] family —
/// the "as many scenarios as you can imagine" smoke test. `volume` is the
/// per-phase request count.
pub fn full_tour(initial_objects: usize, volume: usize) -> PhaseSchedule {
    PhaseSchedule::new(
        initial_objects,
        vec![
            PhaseSpec::new(
                "static-zipf",
                PhaseKind::StaticZipf { skew: 0.9, write_fraction: 0.1 },
                volume,
            ),
            PhaseSpec::new(
                "hotspot-migration",
                PhaseKind::HotspotMigration {
                    hot_objects: 4,
                    hot_fraction: 0.8,
                    migrate_every: volume.div_ceil(5).max(1),
                    write_fraction: 0.2,
                },
                volume,
            ),
            PhaseSpec::new(
                "bursty",
                PhaseKind::Bursty { burst_len: 50, burst_objects: 3, write_fraction: 0.15 },
                volume,
            ),
            PhaseSpec::new(
                "mix-flip",
                PhaseKind::MixFlip {
                    flip_every: volume.div_ceil(4).max(1),
                    read_writes: 0.02,
                    write_writes: 0.8,
                    skew: 0.7,
                },
                volume,
            ),
            PhaseSpec::new(
                "object-churn",
                PhaseKind::ObjectChurn {
                    churn_every: volume.div_ceil(8).max(1),
                    skew: 0.9,
                    write_fraction: 0.25,
                },
                volume,
            ),
            PhaseSpec::new(
                "single-bus-saturation",
                PhaseKind::SingleBusSaturation { write_fraction: 0.5, contended_objects: 2 },
                volume,
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, star, BandwidthProfile};
    use std::collections::HashSet;

    fn net() -> Network {
        balanced(3, 2, BandwidthProfile::Uniform)
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let t = net();
        let schedule = full_tour(8, 200);
        let a: Vec<PhaseRequest> = schedule.stream(&t, 42).collect();
        let b: Vec<PhaseRequest> = schedule.stream(&t, 42).collect();
        assert_eq!(a, b);
        let c: Vec<PhaseRequest> = schedule.stream(&t, 43).collect();
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn cloned_stream_state_resumes_identically() {
        let t = net();
        let schedule = full_tour(8, 120);
        let mut cursor = schedule.stream_state(&t, 31);
        for _ in 0..250 {
            cursor.next_request(&schedule, &t).unwrap();
        }
        // A clone taken mid-stream emits the exact same suffix as the
        // original — the checkpoint/restore contract of scenario sessions.
        let mut fork = cursor.clone();
        let rest: Vec<PhaseRequest> =
            std::iter::from_fn(|| cursor.next_request(&schedule, &t)).collect();
        let forked: Vec<PhaseRequest> =
            std::iter::from_fn(|| fork.next_request(&schedule, &t)).collect();
        assert_eq!(rest.len(), schedule.total_requests() - 250);
        assert_eq!(rest, forked);
        assert_eq!(cursor.live_objects(), fork.live_objects());
        assert_eq!(cursor.retired_objects(), fork.retired_objects());
    }

    #[test]
    fn stream_and_owned_cursor_agree() {
        let t = net();
        let schedule = full_tour(5, 80);
        let via_iter: Vec<PhaseRequest> = schedule.stream(&t, 9).collect();
        let mut cursor = schedule.stream_state(&t, 9);
        let via_cursor: Vec<PhaseRequest> =
            std::iter::from_fn(|| cursor.next_request(&schedule, &t)).collect();
        assert_eq!(via_iter, via_cursor);
        assert_eq!(cursor.remaining(&schedule), 0);
    }

    #[test]
    fn matrix_totals_match_requested_volume() {
        let t = net();
        let schedule = full_tour(8, 150);
        let m = schedule.matrix(&t, 5);
        assert_eq!(m.grand_total() as usize, schedule.total_requests());
        assert_eq!(m.n_objects(), schedule.max_objects());
        m.validate(&t).unwrap();
    }

    #[test]
    fn every_phase_emits_exactly_its_volume() {
        let t = net();
        let schedule = full_tour(6, 97);
        let mut stream = schedule.stream(&t, 1);
        for i in 0..schedule.phases.len() {
            for j in 0..schedule.phases[i].requests {
                assert!(stream.next().is_some());
                if j == 0 {
                    assert_eq!(stream.phase_index(), i);
                }
            }
        }
        assert!(stream.next().is_none());
        assert_eq!(stream.len(), 0);
    }

    #[test]
    fn churn_never_references_retired_objects() {
        let t = net();
        let schedule = PhaseSchedule::new(
            6,
            vec![
                PhaseSpec::new(
                    "churn",
                    PhaseKind::ObjectChurn { churn_every: 10, skew: 1.0, write_fraction: 0.3 },
                    400,
                ),
                PhaseSpec::new(
                    "after",
                    PhaseKind::StaticZipf { skew: 0.5, write_fraction: 0.1 },
                    200,
                ),
            ],
        );
        let mut stream = schedule.stream(&t, 9);
        let mut dead: HashSet<ObjectId> = HashSet::new();
        let mut retired_seen = 0;
        while let Some(req) = stream.next() {
            for &r in &stream.retired_objects()[retired_seen..] {
                dead.insert(r);
            }
            retired_seen = stream.retired_objects().len();
            assert!(!dead.contains(&req.object), "request to retired object {:?}", req.object);
            assert!((req.object.index()) < schedule.max_objects());
        }
        assert_eq!(stream.retired_objects().len(), 39, "400 requests / churn_every 10, minus i=0");
        // The follow-up phase keeps honouring earlier retirements: its
        // live set is the churned one.
        assert_eq!(stream.live_objects().len(), 6);
    }

    #[test]
    fn churn_mints_fresh_ids_up_to_max_objects() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "churn",
                PhaseKind::ObjectChurn { churn_every: 5, skew: 0.0, write_fraction: 0.0 },
                100,
            )],
        );
        assert_eq!(schedule.max_objects(), 4 + 20);
        let mut stream = schedule.stream(&t, 3);
        for _ in stream.by_ref() {}
        // 100/5 = 20 events, but the i=0 boundary does not churn.
        assert_eq!(stream.retired_objects().len(), 19);
        let live: HashSet<u32> = stream.live_objects().iter().map(|o| o.0).collect();
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|&o| (o as usize) < schedule.max_objects()));
    }

    #[test]
    fn single_bus_phase_alternates_sides() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "sat",
                PhaseKind::SingleBusSaturation { write_fraction: 0.5, contended_objects: 2 },
                200,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 11).collect();
        // Consecutive requests to the same object come from processors
        // whose pairwise path crosses the split bus: they are never equal.
        for pair in reqs.chunks(2) {
            if let [a, b] = pair {
                assert_eq!(a.object, b.object);
                assert_ne!(a.processor, b.processor, "sides must differ");
            }
        }
        let touched: HashSet<u32> = reqs.iter().map(|r| r.object.0).collect();
        assert_eq!(touched.len(), 2, "contended set has two objects");
    }

    #[test]
    fn hotspot_migration_moves_the_home() {
        let t = net();
        let schedule = PhaseSchedule::new(
            8,
            vec![PhaseSpec::new(
                "hot",
                PhaseKind::HotspotMigration {
                    hot_objects: 2,
                    hot_fraction: 1.0,
                    migrate_every: 50,
                    write_fraction: 0.0,
                },
                300,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 13).collect();
        // With hot_fraction 1.0 all requests come from the per-window
        // home; at least two distinct homes must appear across windows.
        let homes: HashSet<NodeId> = reqs.iter().map(|r| r.processor).collect();
        assert!(homes.len() >= 2, "home never migrated: {homes:?}");
        for window in reqs.chunks(50) {
            let w: HashSet<NodeId> = window.iter().map(|r| r.processor).collect();
            assert_eq!(w.len(), 1, "one home per window");
        }
    }

    #[test]
    fn mix_flip_alternates_write_rates() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "flip",
                PhaseKind::MixFlip {
                    flip_every: 250,
                    read_writes: 0.0,
                    write_writes: 1.0,
                    skew: 0.5,
                },
                1000,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 17).collect();
        for (i, chunk) in reqs.chunks(250).enumerate() {
            let writes = chunk.iter().filter(|r| r.is_write).count();
            if i % 2 == 0 {
                assert_eq!(writes, 0, "read-heavy half-cycle {i}");
            } else {
                assert_eq!(writes, 250, "write-heavy half-cycle {i}");
            }
        }
    }

    #[test]
    fn bursty_bursts_share_source_and_objects() {
        let t = star(6, 4);
        let schedule = PhaseSchedule::new(
            12,
            vec![PhaseSpec::new(
                "bursty",
                PhaseKind::Bursty { burst_len: 25, burst_objects: 2, write_fraction: 0.0 },
                100,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 19).collect();
        for burst in reqs.chunks(25) {
            let procs: HashSet<NodeId> = burst.iter().map(|r| r.processor).collect();
            assert_eq!(procs.len(), 1, "one source per burst");
            let objs: HashSet<u32> = burst.iter().map(|r| r.object.0).collect();
            assert!(objs.len() <= 2, "at most burst_objects objects");
        }
    }

    #[test]
    fn size_hint_tracks_remaining_requests() {
        let t = net();
        let schedule = full_tour(6, 40);
        let mut stream = schedule.stream(&t, 23);
        assert_eq!(stream.len(), 240);
        stream.next();
        assert_eq!(stream.len(), 239);
    }
}
