//! Phase schedules: online access patterns that *shift over time*.
//!
//! The static generators in [`crate::generators`] describe one frequency
//! matrix; real traffic (parallel-program globals, VSM pages, WWW pages —
//! the paper's motivating workloads) moves through regimes: popularity is
//! skewed, hotspots migrate between processors, load arrives in bursts,
//! read/write mixes flip, objects are created and deleted. A
//! [`PhaseSchedule`] strings such regimes together and a [`PhaseStream`]
//! turns it into an *online* request sequence, one request at a time, so
//! arbitrarily long scenarios never materialize a full trace.
//!
//! Every stream is deterministic given the schedule, the network and a
//! `u64` seed, and emits exactly [`PhaseSpec::requests`] requests per
//! phase; churn phases retire live objects and mint fresh ids, and a
//! retired object is never referenced again (asserted by the test suite
//! and relied on by the scenario engine).
//!
//! ```
//! use hbn_topology::generators::{balanced, BandwidthProfile};
//! use hbn_workload::phases::{PhaseKind, PhaseSchedule, PhaseSpec};
//!
//! let net = balanced(3, 2, BandwidthProfile::Uniform);
//! let schedule = PhaseSchedule::new(
//!     8,
//!     vec![
//!         PhaseSpec::new("warm", PhaseKind::StaticZipf { skew: 0.9, write_fraction: 0.1 }, 100),
//!         PhaseSpec::new("churn", PhaseKind::ObjectChurn { churn_every: 25, skew: 0.9, write_fraction: 0.3 }, 100),
//!     ],
//! );
//! let requests: Vec<_> = schedule.stream(&net, 7).collect();
//! assert_eq!(requests.len(), schedule.total_requests());
//! // `max_objects()` budgets one churn insertion per `churn_every`
//! // requests (100/25 = 4 on top of the 8 initial objects), an upper
//! // bound on the ids the stream can mint — the phase itself fires three
//! // events, at requests 25, 50 and 75 (the i = 0 boundary never churns).
//! assert_eq!(schedule.max_objects(), 12);
//! ```

use crate::arrivals::OpenLoopArrivals;
use crate::freq::AccessMatrix;
use crate::generators::Zipf;
use crate::objects::ObjectId;
use hbn_topology::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request of an online phase stream.
///
/// The same triple as the simulator's trace requests and the dynamic
/// strategy's online requests; the scenario engine converts as it routes
/// the stream through both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRequest {
    /// The issuing processor (a leaf of the network).
    pub processor: NodeId,
    /// The accessed object.
    pub object: ObjectId,
    /// `true` for writes.
    pub is_write: bool,
}

/// An access-pattern family governing one phase of a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// Stationary WWW-style traffic: object popularity is Zipf(`skew`)
    /// over the live objects, requesting processors are uniform, and a
    /// `write_fraction` of requests are writes.
    StaticZipf {
        /// Zipf exponent of the popularity ranking (`0` = uniform).
        skew: f64,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// A hot working set pinned to a *home* processor that migrates
    /// through the machine — the VSM page-migration regime.
    HotspotMigration {
        /// Size of the hot object set (clamped to the live set).
        hot_objects: usize,
        /// Probability that a request targets the hot set from the home.
        hot_fraction: f64,
        /// Requests between home migrations (`0` disables migration).
        migrate_every: usize,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Bursty traffic: each burst picks a small object subset and one
    /// requesting processor, hammers them, then moves on.
    Bursty {
        /// Requests per burst (≥ 1).
        burst_len: usize,
        /// Objects touched per burst (clamped to the live set).
        burst_objects: usize,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Read-heavy / write-heavy flips: the write fraction alternates
    /// between two levels every `flip_every` requests (starting with
    /// `read_writes`), while popularity stays Zipf(`skew`).
    MixFlip {
        /// Requests between flips (≥ 1).
        flip_every: usize,
        /// Write fraction of the read-heavy half-cycles.
        read_writes: f64,
        /// Write fraction of the write-heavy half-cycles.
        write_writes: f64,
        /// Zipf exponent of the popularity ranking.
        skew: f64,
    },
    /// Object churn: every `churn_every` requests one uniformly random
    /// live object is retired (never referenced again) and a fresh object
    /// id is minted in its place.
    ObjectChurn {
        /// Requests between churn events (≥ 1).
        churn_every: usize,
        /// Zipf exponent of the popularity ranking over live objects.
        skew: f64,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Adversarial single-bus saturation: requesters alternate between
    /// two processor groups on opposite sides of one bus, over a small
    /// object set, so every replication and write broadcast crosses that
    /// bus.
    SingleBusSaturation {
        /// Probability that a request is a write (high values force the
        /// read-replicate / write-collapse ping-pong).
        write_fraction: f64,
        /// Objects in the contended set (clamped to the live set).
        contended_objects: usize,
    },
    /// Multi-tenant interference: `tenants` independent workloads share
    /// the tree. Tenant `t` owns the live objects with `id % tenants ==
    /// t` and a contiguous processor range, issues requests round-robin
    /// (request `i` belongs to tenant `i % tenants`), samples its own
    /// objects Zipf(`skew`), and writes with probability
    /// `write_fraction · (t+1)/tenants` — asymmetric on purpose, so
    /// per-tenant congestion attribution has something to attribute.
    /// `tenants` is clamped to `[2, min(live objects, processors)]`.
    Interference {
        /// Number of co-located workloads (≥ 2 after clamping).
        tenants: usize,
        /// Zipf exponent of each tenant's popularity ranking.
        skew: f64,
        /// Base write probability; tenant `t` uses `(t+1)/tenants` of it.
        write_fraction: f64,
    },
    /// Diurnal traffic: arrival times come from an [`OpenLoopArrivals`]
    /// process thinned by a sinusoidal day curve (intensity
    /// `0.25 + 0.75·sin²(π·t mod 1)` — quiet nights, busy middays), and
    /// the *active* processor region follows the sun: the fractional
    /// position within the day picks one of `regions` contiguous
    /// processor ranges. Object popularity stays Zipf(`skew`).
    Diurnal {
        /// Follow-the-sun processor regions (clamped to `[1, processors]`).
        regions: usize,
        /// Offered arrival rate per unit of virtual time (non-positive
        /// or non-finite rates fall back to 1.0).
        rate: f64,
        /// Zipf exponent of the popularity ranking.
        skew: f64,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Flash crowds: a background Zipf(`skew`) workload at `rate`
    /// arrivals per unit time, with a periodic crowd window (the
    /// `[0.4, 0.6)` fraction of each unit of virtual time) during which
    /// the offered rate jumps by `boost`× and *every* processor
    /// read-storms one hot object. Implemented by Poisson thinning: the
    /// arrival process runs at `rate·boost` and off-window arrivals are
    /// accepted with probability `1/boost`.
    FlashCrowd {
        /// Offered background rate (non-positive or non-finite rates
        /// fall back to 1.0).
        rate: f64,
        /// Rate multiplier inside the crowd window (clamped to ≥ 1).
        boost: u64,
        /// Zipf exponent of the background popularity ranking.
        skew: f64,
        /// Background write probability (crowd requests are all reads).
        write_fraction: f64,
    },
}

/// One phase: a labelled access-pattern family and a request volume.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Human-readable phase label (reported in scenario summaries).
    pub label: String,
    /// The access-pattern family.
    pub kind: PhaseKind,
    /// Exact number of requests this phase emits.
    pub requests: usize,
}

impl PhaseSpec {
    /// A phase emitting `requests` requests of pattern `kind`.
    pub fn new(label: impl Into<String>, kind: PhaseKind, requests: usize) -> Self {
        PhaseSpec { label: label.into(), kind, requests }
    }

    /// Number of churn events (object deletions/insertions) this phase
    /// performs.
    pub fn churn_events(&self) -> usize {
        match self.kind {
            PhaseKind::ObjectChurn { churn_every, .. } if churn_every > 0 => {
                self.requests / churn_every
            }
            _ => 0,
        }
    }
}

/// A declarative multi-phase access pattern over a growing object space.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    /// Objects live at the start of the schedule (ids `0..initial_objects`).
    pub initial_objects: usize,
    /// The phases, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl PhaseSchedule {
    /// A schedule starting from `initial_objects ≥ 1` live objects.
    pub fn new(initial_objects: usize, phases: Vec<PhaseSpec>) -> Self {
        assert!(initial_objects >= 1, "a schedule needs at least one live object");
        PhaseSchedule { initial_objects, phases }
    }

    /// Total requests the schedule emits.
    pub fn total_requests(&self) -> usize {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Upper bound on the number of distinct object ids the stream can
    /// reference: the initial set plus every churn insertion. Size
    /// strategy/placement state (`DynamicTree::new`, `AccessMatrix::new`)
    /// with this.
    pub fn max_objects(&self) -> usize {
        self.initial_objects + self.phases.iter().map(PhaseSpec::churn_events).sum::<usize>()
    }

    /// The widest tenant count any [`PhaseKind::Interference`] phase of
    /// this schedule declares, or 1 for single-tenant schedules. The
    /// scenario engine partitions objects by `id % tenants()` when
    /// attributing per-tenant load; the partition key is the *declared*
    /// count (attribution is a partition of accounting, valid for any
    /// key), even where emission clamps the effective tenant count.
    pub fn tenants(&self) -> usize {
        self.phases
            .iter()
            .map(|p| match p.kind {
                PhaseKind::Interference { tenants, .. } => tenants.max(2),
                _ => 1,
            })
            .max()
            .unwrap_or(1)
    }

    /// The streaming request source for this schedule on `net`,
    /// deterministic in `seed`.
    pub fn stream<'a>(&'a self, net: &'a Network, seed: u64) -> PhaseStream<'a> {
        PhaseStream::new(self, net, seed)
    }

    /// The owned cursor form of [`PhaseSchedule::stream`]: a cloneable
    /// [`PhaseStreamState`] that borrows nothing, for callers that own the
    /// schedule and network themselves (e.g. a resumable scenario
    /// session). Draw requests with [`PhaseStreamState::next_request`].
    pub fn stream_state(&self, net: &Network, seed: u64) -> PhaseStreamState {
        PhaseStreamState::new(self, net, seed)
    }

    /// Aggregate the whole stream into the read/write frequency matrix
    /// `h_r, h_w` — the hindsight view a static placement would be
    /// computed from. Materializes counts, not the trace.
    pub fn matrix(&self, net: &Network, seed: u64) -> AccessMatrix {
        let mut m = AccessMatrix::new(self.max_objects());
        for r in self.stream(net, seed) {
            if r.is_write {
                m.add(r.processor, r.object, 0, 1);
            } else {
                m.add(r.processor, r.object, 1, 0);
            }
        }
        m
    }
}

/// Per-phase sampling state, rebuilt when the stream enters a phase.
#[derive(Debug, Clone)]
enum PhaseState {
    Zipf {
        zipf: Zipf,
        write_fraction: f64,
    },
    Hotspot {
        zipf: Zipf,
        hot: usize,
        hot_fraction: f64,
        migrate_every: usize,
        write_fraction: f64,
        home: usize,
    },
    Bursty {
        burst_len: usize,
        burst_objects: usize,
        write_fraction: f64,
        // Current burst: live-set indices and the requesting processor.
        objects: Vec<usize>,
        processor: usize,
        emitted: usize,
    },
    MixFlip {
        zipf: Zipf,
        flip_every: usize,
        read_writes: f64,
        write_writes: f64,
    },
    Churn {
        zipf: Zipf,
        churn_every: usize,
        write_fraction: f64,
    },
    SingleBus {
        write_fraction: f64,
        contended: Vec<usize>,
        // Processor groups on opposite sides of the saturated bus.
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        emitted: usize,
    },
    Interference {
        tenants: usize,
        write_fraction: f64,
        // Per-tenant popularity rankings over the tenant's own objects.
        zipfs: Vec<Zipf>,
        // Per-tenant live-set slot indices.
        object_groups: Vec<Vec<usize>>,
        // Per-tenant contiguous processor ranges.
        proc_groups: Vec<Vec<NodeId>>,
    },
    Diurnal {
        zipf: Zipf,
        write_fraction: f64,
        regions: usize,
        arrivals: OpenLoopArrivals,
    },
    FlashCrowd {
        zipf: Zipf,
        write_fraction: f64,
        // Off-window thinning probability, 1/boost.
        accept: f64,
        arrivals: OpenLoopArrivals,
    },
}

/// Streaming request source of a [`PhaseSchedule`]: an iterator over
/// [`PhaseRequest`]s that holds only O(live objects) state.
///
/// A thin borrowing wrapper around [`PhaseStreamState`] — the owned,
/// cloneable cursor — so the ergonomic `schedule.stream(net, seed)`
/// iterator and the resumable cursor share one implementation.
#[derive(Debug)]
pub struct PhaseStream<'a> {
    schedule: &'a PhaseSchedule,
    net: &'a Network,
    state: PhaseStreamState,
}

impl<'a> PhaseStream<'a> {
    fn new(schedule: &'a PhaseSchedule, net: &'a Network, seed: u64) -> Self {
        PhaseStream { schedule, net, state: PhaseStreamState::new(schedule, net, seed) }
    }

    /// Index of the current phase (advances as the stream crosses a
    /// phase boundary while emitting).
    pub fn phase_index(&self) -> usize {
        self.state.phase_index()
    }

    /// Object ids currently live (churn mutates this set).
    pub fn live_objects(&self) -> &[ObjectId] {
        self.state.live_objects()
    }

    /// Object ids retired by churn so far, in retirement order.
    pub fn retired_objects(&self) -> &[ObjectId] {
        self.state.retired_objects()
    }

    /// The underlying owned cursor (e.g. to snapshot mid-iteration).
    pub fn state(&self) -> &PhaseStreamState {
        &self.state
    }

    /// Unwrap into the owned cursor, keeping the exact position.
    pub fn into_state(self) -> PhaseStreamState {
        self.state
    }
}

/// The owned cursor of a phase stream: the RNG position, the live/retired
/// object sets and the per-phase sampling state, with no borrow of the
/// schedule or network. Cloning it snapshots the stream position exactly
/// — two clones driven forward with the same `(schedule, net)` emit
/// identical suffixes, which is what makes scenario sessions resumable.
///
/// Every method that advances the cursor takes the schedule and network
/// explicitly; callers must pass the same pair the cursor was created
/// with (the cursor indexes into both).
#[derive(Debug, Clone)]
pub struct PhaseStreamState {
    rng: StdRng,
    /// Live object ids; churn replaces entries in place.
    live: Vec<ObjectId>,
    /// Retired object ids, in retirement order.
    retired: Vec<ObjectId>,
    next_object: u32,
    phase_idx: usize,
    emitted_in_phase: usize,
    state: Option<PhaseState>,
}

impl PhaseStreamState {
    /// A cursor at the start of `schedule`, deterministic in `seed` —
    /// the owned form of [`PhaseSchedule::stream`].
    pub fn new(schedule: &PhaseSchedule, net: &Network, seed: u64) -> Self {
        assert!(net.n_processors() >= 2, "phase streams need at least two processors");
        let mut s = PhaseStreamState {
            rng: StdRng::seed_from_u64(seed),
            live: (0..schedule.initial_objects as u32).map(ObjectId).collect(),
            retired: Vec::new(),
            next_object: schedule.initial_objects as u32,
            phase_idx: 0,
            emitted_in_phase: 0,
            state: None,
        };
        s.enter_phase(schedule, net);
        s
    }

    /// Emit the next request, or `None` once the schedule is exhausted.
    /// `schedule` and `net` must be the pair the cursor was created with.
    pub fn next_request(
        &mut self,
        schedule: &PhaseSchedule,
        net: &Network,
    ) -> Option<PhaseRequest> {
        loop {
            let phase = schedule.phases.get(self.phase_idx)?;
            if self.emitted_in_phase >= phase.requests {
                self.phase_idx += 1;
                self.emitted_in_phase = 0;
                self.enter_phase(schedule, net);
                continue;
            }
            let req = self.emit(net);
            self.emitted_in_phase += 1;
            return Some(req);
        }
    }

    /// Requests left before the schedule is exhausted.
    pub fn remaining(&self, schedule: &PhaseSchedule) -> usize {
        schedule
            .phases
            .iter()
            .skip(self.phase_idx)
            .map(|p| p.requests)
            .sum::<usize>()
            .saturating_sub(self.emitted_in_phase)
    }

    /// Index of the current phase (advances as the cursor crosses a
    /// phase boundary while emitting).
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    /// Object ids currently live (churn mutates this set).
    pub fn live_objects(&self) -> &[ObjectId] {
        &self.live
    }

    /// Object ids retired by churn so far, in retirement order.
    pub fn retired_objects(&self) -> &[ObjectId] {
        &self.retired
    }

    /// Build the sampling state for the phase at `phase_idx` (no-op past
    /// the last phase).
    fn enter_phase(&mut self, schedule: &PhaseSchedule, net: &Network) {
        let Some(phase) = schedule.phases.get(self.phase_idx) else {
            self.state = None;
            return;
        };
        let n_live = self.live.len();
        let procs = net.processors();
        self.state = Some(match phase.kind {
            PhaseKind::StaticZipf { skew, write_fraction } => {
                PhaseState::Zipf { zipf: Zipf::new(n_live, skew), write_fraction }
            }
            PhaseKind::HotspotMigration {
                hot_objects,
                hot_fraction,
                migrate_every,
                write_fraction,
            } => PhaseState::Hotspot {
                zipf: Zipf::new(n_live, 1.0),
                hot: hot_objects.clamp(1, n_live),
                hot_fraction,
                migrate_every,
                write_fraction,
                home: self.rng.gen_range(0..procs.len()),
            },
            PhaseKind::Bursty { burst_len, burst_objects, write_fraction } => PhaseState::Bursty {
                burst_len: burst_len.max(1),
                burst_objects: burst_objects.clamp(1, n_live),
                write_fraction,
                objects: Vec::new(),
                processor: 0,
                emitted: 0,
            },
            PhaseKind::MixFlip { flip_every, read_writes, write_writes, skew } => {
                PhaseState::MixFlip {
                    zipf: Zipf::new(n_live, skew),
                    flip_every: flip_every.max(1),
                    read_writes,
                    write_writes,
                }
            }
            PhaseKind::ObjectChurn { churn_every, skew, write_fraction } => PhaseState::Churn {
                zipf: Zipf::new(n_live, skew),
                churn_every: churn_every.max(1),
                write_fraction,
            },
            PhaseKind::SingleBusSaturation { write_fraction, contended_objects } => {
                let (side_a, side_b) = split_bus_sides(net);
                let k = contended_objects.clamp(1, n_live);
                PhaseState::SingleBus {
                    write_fraction,
                    contended: (0..k).collect(),
                    side_a,
                    side_b,
                    emitted: 0,
                }
            }
            PhaseKind::Interference { tenants, skew, write_fraction } => {
                let t_eff = tenants.clamp(2, n_live.min(procs.len()));
                // Partition the live set by object id so the emission
                // bias matches the engine's `id % tenants` attribution
                // key; fall back to a slot round-robin if churn left
                // some id class empty.
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); t_eff];
                for (slot, &obj) in self.live.iter().enumerate() {
                    groups[obj.index() % t_eff].push(slot);
                }
                if groups.iter().any(Vec::is_empty) {
                    groups.iter_mut().for_each(Vec::clear);
                    for slot in 0..n_live {
                        groups[slot % t_eff].push(slot);
                    }
                }
                let zipfs = groups.iter().map(|g| Zipf::new(g.len(), skew)).collect();
                let proc_groups = (0..t_eff)
                    .map(|t| procs[t * procs.len() / t_eff..(t + 1) * procs.len() / t_eff].to_vec())
                    .collect();
                PhaseState::Interference {
                    tenants: t_eff,
                    write_fraction,
                    zipfs,
                    object_groups: groups,
                    proc_groups,
                }
            }
            PhaseKind::Diurnal { regions, rate, skew, write_fraction } => PhaseState::Diurnal {
                zipf: Zipf::new(n_live, skew),
                write_fraction,
                regions: regions.clamp(1, procs.len()),
                arrivals: OpenLoopArrivals::new(self.rng.gen(), sane_rate(rate)),
            },
            PhaseKind::FlashCrowd { rate, boost, skew, write_fraction } => {
                let boost = boost.max(1);
                PhaseState::FlashCrowd {
                    zipf: Zipf::new(n_live, skew),
                    write_fraction,
                    accept: 1.0 / boost as f64,
                    arrivals: OpenLoopArrivals::new(self.rng.gen(), sane_rate(rate) * boost as f64),
                }
            }
        });
    }

    /// Emit the next request of the current phase. `self.state` is the
    /// matching variant for the schedule phase at `self.phase_idx`.
    fn emit(&mut self, net: &Network) -> PhaseRequest {
        let procs = net.processors();
        let i = self.emitted_in_phase;
        let state = self.state.as_mut().expect("emit called with an active phase");
        match state {
            PhaseState::Zipf { zipf, write_fraction } => {
                let object = self.live[zipf.sample(&mut self.rng)];
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::Hotspot {
                zipf,
                hot,
                hot_fraction,
                migrate_every,
                write_fraction,
                home,
            } => {
                if *migrate_every > 0 && i > 0 && i.is_multiple_of(*migrate_every) {
                    // The working set moves: pick a fresh home processor.
                    let next = self.rng.gen_range(0..procs.len() - 1);
                    *home = if next >= *home { next + 1 } else { next };
                }
                let is_write = self.rng.gen_bool(write_fraction.clamp(0.0, 1.0));
                if self.rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    let object = self.live[self.rng.gen_range(0..*hot)];
                    PhaseRequest { processor: procs[*home], object, is_write }
                } else {
                    let object = self.live[zipf.sample(&mut self.rng)];
                    PhaseRequest {
                        processor: procs[self.rng.gen_range(0..procs.len())],
                        object,
                        is_write,
                    }
                }
            }
            PhaseState::Bursty {
                burst_len,
                burst_objects,
                write_fraction,
                objects,
                processor,
                emitted,
            } => {
                if *emitted % *burst_len == 0 {
                    // Start a new burst: fresh object subset, fresh source.
                    objects.clear();
                    for _ in 0..*burst_objects {
                        objects.push(self.rng.gen_range(0..self.live.len()));
                    }
                    *processor = self.rng.gen_range(0..procs.len());
                }
                let object = self.live[objects[*emitted % objects.len()]];
                *emitted += 1;
                PhaseRequest {
                    processor: procs[*processor],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::MixFlip { zipf, flip_every, read_writes, write_writes } => {
                let write_fraction =
                    if (i / *flip_every).is_multiple_of(2) { *read_writes } else { *write_writes };
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object: self.live[zipf.sample(&mut self.rng)],
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::Churn { zipf, churn_every, write_fraction } => {
                if i > 0 && i.is_multiple_of(*churn_every) {
                    // Retire one uniformly random live object and mint a
                    // fresh id in its slot; the retired id never recurs.
                    let slot = self.rng.gen_range(0..self.live.len());
                    self.retired.push(self.live[slot]);
                    self.live[slot] = ObjectId(self.next_object);
                    self.next_object += 1;
                }
                PhaseRequest {
                    processor: procs[self.rng.gen_range(0..procs.len())],
                    object: self.live[zipf.sample(&mut self.rng)],
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::SingleBus { write_fraction, contended, side_a, side_b, emitted } => {
                // Alternate sides so every consecutive pair of requests on
                // an object straddles the bus.
                let side = if *emitted % 2 == 0 { &*side_a } else { &*side_b };
                let object = self.live[contended[(*emitted / 2) % contended.len()]];
                *emitted += 1;
                PhaseRequest {
                    processor: side[self.rng.gen_range(0..side.len())],
                    object,
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::Interference {
                tenants,
                write_fraction,
                zipfs,
                object_groups,
                proc_groups,
            } => {
                let t = i % *tenants;
                let wf = (*write_fraction * (t + 1) as f64 / *tenants as f64).clamp(0.0, 1.0);
                let object = self.live[object_groups[t][zipfs[t].sample(&mut self.rng)]];
                let group = &proc_groups[t];
                PhaseRequest {
                    processor: group[self.rng.gen_range(0..group.len())],
                    object,
                    is_write: self.rng.gen_bool(wf),
                }
            }
            PhaseState::Diurnal { zipf, write_fraction, regions, arrivals } => {
                // Thin the max-rate Poisson stream by the day curve:
                // accept an arrival at day position `d` with probability
                // 0.25 + 0.75·sin²(π·d). Intensity ≥ 0.25 bounds the
                // expected rejections per request at 3.
                let day = loop {
                    let d = arrivals.next_arrival().fract();
                    let intensity = 0.25 + 0.75 * (std::f64::consts::PI * d).sin().powi(2);
                    if self.rng.gen_bool(intensity) {
                        break d;
                    }
                };
                // Follow the sun: the day position picks the active
                // contiguous processor region.
                let region = ((day * *regions as f64) as usize).min(*regions - 1);
                let lo = region * procs.len() / *regions;
                let hi = (region + 1) * procs.len() / *regions;
                PhaseRequest {
                    processor: procs[self.rng.gen_range(lo..hi)],
                    object: self.live[zipf.sample(&mut self.rng)],
                    is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                }
            }
            PhaseState::FlashCrowd { zipf, write_fraction, accept, arrivals } => {
                // The process runs at rate·boost; inside the crowd window
                // every arrival lands, outside only 1/boost of them do —
                // so the accepted rate is `rate` off-window and
                // `rate·boost` inside it.
                let in_crowd = loop {
                    let d = arrivals.next_arrival().fract();
                    let in_crowd = (0.4..0.6).contains(&d);
                    if in_crowd || self.rng.gen_bool(*accept) {
                        break in_crowd;
                    }
                };
                if in_crowd {
                    // Read storm on one hot object from everywhere.
                    PhaseRequest {
                        processor: procs[self.rng.gen_range(0..procs.len())],
                        object: self.live[0],
                        is_write: false,
                    }
                } else {
                    PhaseRequest {
                        processor: procs[self.rng.gen_range(0..procs.len())],
                        object: self.live[zipf.sample(&mut self.rng)],
                        is_write: self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)),
                    }
                }
            }
        }
    }
}

/// Arrival rates must be finite and positive ([`OpenLoopArrivals::new`]
/// panics otherwise); degenerate spec values fall back to 1.0 so phase
/// schedules stay total.
fn sane_rate(rate: f64) -> f64 {
    if rate.is_finite() && rate > 0.0 {
        rate
    } else {
        1.0
    }
}

/// Split the processors across the most balanced bus: the two child
/// subtrees with the most processors on each side. Falls back to an
/// even split of the processor list on degenerate trees.
fn split_bus_sides(net: &Network) -> (Vec<NodeId>, Vec<NodeId>) {
    let procs = net.processors();
    let mut best: Option<(usize, Vec<NodeId>, Vec<NodeId>)> = None;
    for bus in net.nodes().filter(|&v| net.is_bus(v)) {
        // Group the processors by their first hop away from `bus`.
        let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &p in procs {
            if p == bus {
                continue;
            }
            let hop = net.step_towards(bus, p);
            match groups.iter_mut().find(|(h, _)| *h == hop) {
                Some((_, g)) => g.push(p),
                None => groups.push((hop, vec![p])),
            }
        }
        if groups.len() < 2 {
            continue;
        }
        groups.sort_by_key(|(_, g)| std::cmp::Reverse(g.len()));
        let score = groups[0].1.len().min(groups[1].1.len());
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            let b = groups.swap_remove(1).1;
            let a = groups.swap_remove(0).1;
            best = Some((score, a, b));
        }
    }
    match best {
        Some((_, a, b)) => (a, b),
        None => {
            let mid = procs.len() / 2;
            (procs[..mid].to_vec(), procs[mid..].to_vec())
        }
    }
}

impl Iterator for PhaseStream<'_> {
    type Item = PhaseRequest;

    fn next(&mut self) -> Option<PhaseRequest> {
        self.state.next_request(self.schedule, self.net)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.state.remaining(self.schedule);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PhaseStream<'_> {}

/// A ready-made six-phase schedule touring the original [`PhaseKind`]
/// families — the "as many scenarios as you can imagine" smoke test.
/// `volume` is the per-phase request count. The interference, diurnal
/// and flash-crowd families added later are covered by
/// `hbn_testutil::family_schedules`, which is the exhaustive registry.
pub fn full_tour(initial_objects: usize, volume: usize) -> PhaseSchedule {
    PhaseSchedule::new(
        initial_objects,
        vec![
            PhaseSpec::new(
                "static-zipf",
                PhaseKind::StaticZipf { skew: 0.9, write_fraction: 0.1 },
                volume,
            ),
            PhaseSpec::new(
                "hotspot-migration",
                PhaseKind::HotspotMigration {
                    hot_objects: 4,
                    hot_fraction: 0.8,
                    migrate_every: volume.div_ceil(5).max(1),
                    write_fraction: 0.2,
                },
                volume,
            ),
            PhaseSpec::new(
                "bursty",
                PhaseKind::Bursty { burst_len: 50, burst_objects: 3, write_fraction: 0.15 },
                volume,
            ),
            PhaseSpec::new(
                "mix-flip",
                PhaseKind::MixFlip {
                    flip_every: volume.div_ceil(4).max(1),
                    read_writes: 0.02,
                    write_writes: 0.8,
                    skew: 0.7,
                },
                volume,
            ),
            PhaseSpec::new(
                "object-churn",
                PhaseKind::ObjectChurn {
                    churn_every: volume.div_ceil(8).max(1),
                    skew: 0.9,
                    write_fraction: 0.25,
                },
                volume,
            ),
            PhaseSpec::new(
                "single-bus-saturation",
                PhaseKind::SingleBusSaturation { write_fraction: 0.5, contended_objects: 2 },
                volume,
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, star, BandwidthProfile};
    use std::collections::HashSet;

    fn net() -> Network {
        balanced(3, 2, BandwidthProfile::Uniform)
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let t = net();
        let schedule = full_tour(8, 200);
        let a: Vec<PhaseRequest> = schedule.stream(&t, 42).collect();
        let b: Vec<PhaseRequest> = schedule.stream(&t, 42).collect();
        assert_eq!(a, b);
        let c: Vec<PhaseRequest> = schedule.stream(&t, 43).collect();
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn cloned_stream_state_resumes_identically() {
        let t = net();
        let schedule = full_tour(8, 120);
        let mut cursor = schedule.stream_state(&t, 31);
        for _ in 0..250 {
            cursor.next_request(&schedule, &t).unwrap();
        }
        // A clone taken mid-stream emits the exact same suffix as the
        // original — the checkpoint/restore contract of scenario sessions.
        let mut fork = cursor.clone();
        let rest: Vec<PhaseRequest> =
            std::iter::from_fn(|| cursor.next_request(&schedule, &t)).collect();
        let forked: Vec<PhaseRequest> =
            std::iter::from_fn(|| fork.next_request(&schedule, &t)).collect();
        assert_eq!(rest.len(), schedule.total_requests() - 250);
        assert_eq!(rest, forked);
        assert_eq!(cursor.live_objects(), fork.live_objects());
        assert_eq!(cursor.retired_objects(), fork.retired_objects());
    }

    #[test]
    fn stream_and_owned_cursor_agree() {
        let t = net();
        let schedule = full_tour(5, 80);
        let via_iter: Vec<PhaseRequest> = schedule.stream(&t, 9).collect();
        let mut cursor = schedule.stream_state(&t, 9);
        let via_cursor: Vec<PhaseRequest> =
            std::iter::from_fn(|| cursor.next_request(&schedule, &t)).collect();
        assert_eq!(via_iter, via_cursor);
        assert_eq!(cursor.remaining(&schedule), 0);
    }

    #[test]
    fn matrix_totals_match_requested_volume() {
        let t = net();
        let schedule = full_tour(8, 150);
        let m = schedule.matrix(&t, 5);
        assert_eq!(m.grand_total() as usize, schedule.total_requests());
        assert_eq!(m.n_objects(), schedule.max_objects());
        m.validate(&t).unwrap();
    }

    #[test]
    fn every_phase_emits_exactly_its_volume() {
        let t = net();
        let schedule = full_tour(6, 97);
        let mut stream = schedule.stream(&t, 1);
        for i in 0..schedule.phases.len() {
            for j in 0..schedule.phases[i].requests {
                assert!(stream.next().is_some());
                if j == 0 {
                    assert_eq!(stream.phase_index(), i);
                }
            }
        }
        assert!(stream.next().is_none());
        assert_eq!(stream.len(), 0);
    }

    #[test]
    fn churn_never_references_retired_objects() {
        let t = net();
        let schedule = PhaseSchedule::new(
            6,
            vec![
                PhaseSpec::new(
                    "churn",
                    PhaseKind::ObjectChurn { churn_every: 10, skew: 1.0, write_fraction: 0.3 },
                    400,
                ),
                PhaseSpec::new(
                    "after",
                    PhaseKind::StaticZipf { skew: 0.5, write_fraction: 0.1 },
                    200,
                ),
            ],
        );
        let mut stream = schedule.stream(&t, 9);
        let mut dead: HashSet<ObjectId> = HashSet::new();
        let mut retired_seen = 0;
        while let Some(req) = stream.next() {
            for &r in &stream.retired_objects()[retired_seen..] {
                dead.insert(r);
            }
            retired_seen = stream.retired_objects().len();
            assert!(!dead.contains(&req.object), "request to retired object {:?}", req.object);
            assert!((req.object.index()) < schedule.max_objects());
        }
        assert_eq!(stream.retired_objects().len(), 39, "400 requests / churn_every 10, minus i=0");
        // The follow-up phase keeps honouring earlier retirements: its
        // live set is the churned one.
        assert_eq!(stream.live_objects().len(), 6);
    }

    #[test]
    fn churn_mints_fresh_ids_up_to_max_objects() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "churn",
                PhaseKind::ObjectChurn { churn_every: 5, skew: 0.0, write_fraction: 0.0 },
                100,
            )],
        );
        assert_eq!(schedule.max_objects(), 4 + 20);
        let mut stream = schedule.stream(&t, 3);
        for _ in stream.by_ref() {}
        // 100/5 = 20 events, but the i=0 boundary does not churn.
        assert_eq!(stream.retired_objects().len(), 19);
        let live: HashSet<u32> = stream.live_objects().iter().map(|o| o.0).collect();
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|&o| (o as usize) < schedule.max_objects()));
    }

    #[test]
    fn single_bus_phase_alternates_sides() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "sat",
                PhaseKind::SingleBusSaturation { write_fraction: 0.5, contended_objects: 2 },
                200,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 11).collect();
        // Consecutive requests to the same object come from processors
        // whose pairwise path crosses the split bus: they are never equal.
        for pair in reqs.chunks(2) {
            if let [a, b] = pair {
                assert_eq!(a.object, b.object);
                assert_ne!(a.processor, b.processor, "sides must differ");
            }
        }
        let touched: HashSet<u32> = reqs.iter().map(|r| r.object.0).collect();
        assert_eq!(touched.len(), 2, "contended set has two objects");
    }

    #[test]
    fn hotspot_migration_moves_the_home() {
        let t = net();
        let schedule = PhaseSchedule::new(
            8,
            vec![PhaseSpec::new(
                "hot",
                PhaseKind::HotspotMigration {
                    hot_objects: 2,
                    hot_fraction: 1.0,
                    migrate_every: 50,
                    write_fraction: 0.0,
                },
                300,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 13).collect();
        // With hot_fraction 1.0 all requests come from the per-window
        // home; at least two distinct homes must appear across windows.
        let homes: HashSet<NodeId> = reqs.iter().map(|r| r.processor).collect();
        assert!(homes.len() >= 2, "home never migrated: {homes:?}");
        for window in reqs.chunks(50) {
            let w: HashSet<NodeId> = window.iter().map(|r| r.processor).collect();
            assert_eq!(w.len(), 1, "one home per window");
        }
    }

    #[test]
    fn mix_flip_alternates_write_rates() {
        let t = net();
        let schedule = PhaseSchedule::new(
            4,
            vec![PhaseSpec::new(
                "flip",
                PhaseKind::MixFlip {
                    flip_every: 250,
                    read_writes: 0.0,
                    write_writes: 1.0,
                    skew: 0.5,
                },
                1000,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 17).collect();
        for (i, chunk) in reqs.chunks(250).enumerate() {
            let writes = chunk.iter().filter(|r| r.is_write).count();
            if i % 2 == 0 {
                assert_eq!(writes, 0, "read-heavy half-cycle {i}");
            } else {
                assert_eq!(writes, 250, "write-heavy half-cycle {i}");
            }
        }
    }

    #[test]
    fn bursty_bursts_share_source_and_objects() {
        let t = star(6, 4);
        let schedule = PhaseSchedule::new(
            12,
            vec![PhaseSpec::new(
                "bursty",
                PhaseKind::Bursty { burst_len: 25, burst_objects: 2, write_fraction: 0.0 },
                100,
            )],
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 19).collect();
        for burst in reqs.chunks(25) {
            let procs: HashSet<NodeId> = burst.iter().map(|r| r.processor).collect();
            assert_eq!(procs.len(), 1, "one source per burst");
            let objs: HashSet<u32> = burst.iter().map(|r| r.object.0).collect();
            assert!(objs.len() <= 2, "at most burst_objects objects");
        }
    }

    fn one_phase(kind: PhaseKind, requests: usize) -> PhaseSchedule {
        PhaseSchedule::new(8, vec![PhaseSpec::new("solo", kind, requests)])
    }

    #[test]
    fn new_families_are_deterministic_and_emit_exact_volumes() {
        let t = net();
        for kind in [
            PhaseKind::Interference { tenants: 2, skew: 0.8, write_fraction: 0.3 },
            PhaseKind::Diurnal { regions: 3, rate: 40.0, skew: 0.8, write_fraction: 0.1 },
            PhaseKind::FlashCrowd { rate: 25.0, boost: 8, skew: 0.8, write_fraction: 0.1 },
        ] {
            let schedule = one_phase(kind, 300);
            let a: Vec<PhaseRequest> = schedule.stream(&t, 77).collect();
            let b: Vec<PhaseRequest> = schedule.stream(&t, 77).collect();
            assert_eq!(a, b, "{kind:?} must be seed-deterministic");
            assert_eq!(a.len(), 300, "{kind:?} must emit exactly its volume");
            let c: Vec<PhaseRequest> = schedule.stream(&t, 78).collect();
            assert_ne!(a, c, "{kind:?} must vary with the seed");
        }
    }

    #[test]
    fn new_families_clone_resume_bit_for_bit() {
        let t = net();
        let schedule = PhaseSchedule::new(
            8,
            vec![
                PhaseSpec::new(
                    "interference",
                    PhaseKind::Interference { tenants: 3, skew: 0.9, write_fraction: 0.4 },
                    120,
                ),
                PhaseSpec::new(
                    "diurnal",
                    PhaseKind::Diurnal { regions: 2, rate: 30.0, skew: 0.7, write_fraction: 0.2 },
                    120,
                ),
                PhaseSpec::new(
                    "flash-crowd",
                    PhaseKind::FlashCrowd { rate: 20.0, boost: 6, skew: 0.7, write_fraction: 0.1 },
                    120,
                ),
            ],
        );
        let mut cursor = schedule.stream_state(&t, 55);
        // Stop mid-diurnal so the fork carries a live arrival process.
        for _ in 0..180 {
            cursor.next_request(&schedule, &t).unwrap();
        }
        let mut fork = cursor.clone();
        let rest: Vec<PhaseRequest> =
            std::iter::from_fn(|| cursor.next_request(&schedule, &t)).collect();
        let forked: Vec<PhaseRequest> =
            std::iter::from_fn(|| fork.next_request(&schedule, &t)).collect();
        assert_eq!(rest.len(), 180);
        assert_eq!(rest, forked);
    }

    #[test]
    fn interference_partitions_objects_and_processors_by_tenant() {
        let t = star(8, 4);
        let schedule =
            one_phase(PhaseKind::Interference { tenants: 2, skew: 0.6, write_fraction: 1.0 }, 400);
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 21).collect();
        // Request i belongs to tenant i % 2; each tenant touches only its
        // own object class and processor half.
        let procs = t.processors();
        for (i, r) in reqs.iter().enumerate() {
            let tenant = i % 2;
            assert_eq!(r.object.index() % 2, tenant, "request {i} crossed tenants");
            let pos = procs.iter().position(|&p| p == r.processor).unwrap();
            assert_eq!(
                if pos < procs.len() / 2 { 0 } else { 1 },
                tenant,
                "request {i} issued from the wrong processor half"
            );
        }
        // Asymmetric write mix: tenant 0 writes at wf/2, tenant 1 at wf.
        let writes =
            |t: usize| reqs.iter().enumerate().filter(|(i, r)| i % 2 == t && r.is_write).count();
        assert!(writes(0) < writes(1), "tenant write mixes must differ");
        assert_eq!(writes(1), 200, "tenant 1 writes every request at wf=1.0");
    }

    #[test]
    fn interference_clamps_wide_tenant_counts() {
        let t = net(); // 9 processors, 8 initial objects
        let schedule = one_phase(
            PhaseKind::Interference { tenants: 1000, skew: 0.5, write_fraction: 0.2 },
            200,
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 3).collect();
        assert_eq!(reqs.len(), 200);
        assert_eq!(schedule.tenants(), 1000, "declared count is not clamped");
    }

    #[test]
    fn schedule_tenants_reports_widest_interference_phase() {
        assert_eq!(full_tour(6, 10).tenants(), 1);
        let mixed = PhaseSchedule::new(
            4,
            vec![
                PhaseSpec::new(
                    "warm",
                    PhaseKind::StaticZipf { skew: 0.5, write_fraction: 0.1 },
                    10,
                ),
                PhaseSpec::new(
                    "i2",
                    PhaseKind::Interference { tenants: 2, skew: 0.5, write_fraction: 0.1 },
                    10,
                ),
                PhaseSpec::new(
                    "i4",
                    PhaseKind::Interference { tenants: 4, skew: 0.5, write_fraction: 0.1 },
                    10,
                ),
            ],
        );
        assert_eq!(mixed.tenants(), 4);
    }

    #[test]
    fn diurnal_concentrates_requests_by_region() {
        let t = star(12, 4);
        let schedule = one_phase(
            PhaseKind::Diurnal { regions: 3, rate: 50.0, skew: 0.5, write_fraction: 0.0 },
            600,
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 41).collect();
        assert_eq!(reqs.len(), 600);
        // All three follow-the-sun regions must be visited, and
        // requests from one instant stay within one region (weak check:
        // every processor gets traffic across a long run).
        let procs = t.processors();
        let mut region_hits = [0usize; 3];
        for r in &reqs {
            let pos = procs.iter().position(|&p| p == r.processor).unwrap();
            region_hits[pos * 3 / procs.len()] += 1;
        }
        assert!(region_hits.iter().all(|&n| n > 0), "all regions visited: {region_hits:?}");
    }

    #[test]
    fn flash_crowd_read_storms_one_hot_object() {
        let t = net();
        let schedule = one_phase(
            PhaseKind::FlashCrowd { rate: 30.0, boost: 10, skew: 0.5, write_fraction: 0.5 },
            800,
        );
        let reqs: Vec<PhaseRequest> = schedule.stream(&t, 29).collect();
        assert_eq!(reqs.len(), 800);
        let hot = reqs.iter().filter(|r| r.object == ObjectId(0) && !r.is_write).count();
        // With boost 10 and a 20% window, crowd arrivals are
        // 2/(2+0.8) ≈ 71% of accepted traffic — the hot object must
        // dominate.
        assert!(hot > reqs.len() / 2, "hot object got only {hot}/{}", reqs.len());
        // Background traffic still exists and can write.
        assert!(reqs.iter().any(|r| r.is_write), "background writes missing");
    }

    #[test]
    fn degenerate_rates_fall_back_instead_of_panicking() {
        let t = net();
        for rate in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let schedule = one_phase(
                PhaseKind::Diurnal { regions: 2, rate, skew: 0.5, write_fraction: 0.1 },
                50,
            );
            assert_eq!(schedule.stream(&t, 1).count(), 50);
        }
    }

    #[test]
    fn size_hint_tracks_remaining_requests() {
        let t = net();
        let schedule = full_tour(6, 40);
        let mut stream = schedule.stream(&t, 23);
        assert_eq!(stream.len(), 240);
        stream.next();
        assert_eq!(stream.len(), 239);
    }
}
