//! # hbn-workload
//!
//! Shared-object workloads for hierarchical bus networks: the read/write
//! frequency matrices `h_r, h_w : P × X → N` of the paper, plus seeded
//! generators for the access-pattern families its introduction motivates
//! (parallel-program globals, virtual-shared-memory pages, WWW pages).

#![warn(missing_docs)]

pub mod arrivals;
pub mod freq;
pub mod generators;
pub mod objects;
pub mod phases;
pub mod stats;

pub use arrivals::OpenLoopArrivals;
pub use freq::{AccessEntry, AccessMatrix, WorkloadError};
pub use objects::ObjectId;
pub use phases::{
    PhaseKind, PhaseRequest, PhaseSchedule, PhaseSpec, PhaseStream, PhaseStreamState,
};
pub use stats::{workload_stats, ObjectStats, WorkloadStats};
