//! Seeded workload generators covering the access-pattern regimes the
//! paper's introduction motivates: global variables of parallel programs
//! (write sharing), virtual-shared-memory pages (migratory/hotspot), and
//! WWW pages (read-mostly, skewed popularity).
//!
//! Every generator is deterministic given its parameters and RNG seed.

use crate::freq::AccessMatrix;
use crate::objects::ObjectId;
use hbn_topology::{Network, NodeId};
use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`, via an explicit CDF
/// and binary search (deterministic, no external distribution crates).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        assert!(s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n >= 1");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Dense uniform workload: every (processor, object) pair independently
/// receives `U[0..=max_reads]` reads and `U[0..=max_writes]` writes, kept
/// with probability `density`.
pub fn uniform<R: Rng>(
    net: &Network,
    n_objects: usize,
    max_reads: u64,
    max_writes: u64,
    density: f64,
    rng: &mut R,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    for x in 0..n_objects as u32 {
        for &p in net.processors() {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                let r = rng.gen_range(0..=max_reads);
                let w = rng.gen_range(0..=max_writes);
                m.add(p, ObjectId(x), r, w);
            }
        }
    }
    m
}

/// WWW-style read-mostly workload: object popularity is Zipf(`skew`),
/// requesting processors are uniform, and a fraction `write_fraction` of
/// requests are writes (typically small). `n_requests` total requests are
/// drawn.
pub fn zipf_read_mostly<R: Rng>(
    net: &Network,
    n_objects: usize,
    n_requests: usize,
    skew: f64,
    write_fraction: f64,
    rng: &mut R,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    let zipf = Zipf::new(n_objects, skew);
    let procs = net.processors();
    for _ in 0..n_requests {
        let x = ObjectId(zipf.sample(rng) as u32);
        let p = procs[rng.gen_range(0..procs.len())];
        if rng.gen_bool(write_fraction.clamp(0.0, 1.0)) {
            m.add(p, x, 0, 1);
        } else {
            m.add(p, x, 1, 0);
        }
    }
    m
}

/// Parallel-program style sharing: each object has one *producer*
/// (writes `writes_per_producer`) and `consumers` readers (each reads
/// `reads_per_consumer`), drawn uniformly without replacement.
pub fn producer_consumer<R: Rng>(
    net: &Network,
    n_objects: usize,
    consumers: usize,
    writes_per_producer: u64,
    reads_per_consumer: u64,
    rng: &mut R,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    let procs = net.processors();
    for x in 0..n_objects as u32 {
        let x = ObjectId(x);
        let producer = procs[rng.gen_range(0..procs.len())];
        m.add(producer, x, 0, writes_per_producer);
        let mut pool: Vec<NodeId> = procs.iter().copied().filter(|&p| p != producer).collect();
        let k = consumers.min(pool.len());
        for _ in 0..k {
            let i = rng.gen_range(0..pool.len());
            let reader = pool.swap_remove(i);
            m.add(reader, x, reads_per_consumer, 0);
        }
    }
    m
}

/// Heavily write-shared objects (global counters, locks): every processor
/// writes each object `writes_each` times and reads it `reads_each` times.
/// This maximises write contention `κ_x` and stresses the broadcast terms.
pub fn shared_write(
    net: &Network,
    n_objects: usize,
    reads_each: u64,
    writes_each: u64,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    for x in 0..n_objects as u32 {
        for &p in net.processors() {
            m.add(p, ObjectId(x), reads_each, writes_each);
        }
    }
    m
}

/// Hotspot workload: a fraction `hot_fraction` of processors (the "hot
/// set") issues `hot_weight` times the traffic of the others; accesses are
/// spread over all objects uniformly with the given read/write amounts.
pub fn hotspot<R: Rng>(
    net: &Network,
    n_objects: usize,
    hot_fraction: f64,
    hot_weight: u64,
    base_reads: u64,
    base_writes: u64,
    rng: &mut R,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    let procs = net.processors();
    let n_hot = ((procs.len() as f64 * hot_fraction).ceil() as usize).clamp(1, procs.len());
    // Deterministic hot set given the RNG: shuffle indices.
    let mut idx: Vec<usize> = (0..procs.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let hot: std::collections::HashSet<usize> = idx[..n_hot].iter().copied().collect();
    for x in 0..n_objects as u32 {
        for (i, &p) in procs.iter().enumerate() {
            let scale = if hot.contains(&i) { hot_weight } else { 1 };
            m.add(p, ObjectId(x), base_reads * scale, base_writes * scale);
        }
    }
    m
}

/// Adversarial "balanced split" workload for the mapping algorithm: for
/// each object, two processors in *different* subtrees of a random bus get
/// equal write weight, so the per-object center of gravity is an inner
/// node and the nibble strategy wants a copy on a bus — forcing the
/// deletion/mapping machinery to do real work.
pub fn balanced_split<R: Rng>(
    net: &Network,
    n_objects: usize,
    weight: u64,
    rng: &mut R,
) -> AccessMatrix {
    let mut m = AccessMatrix::new(n_objects);
    let buses: Vec<NodeId> = net.nodes().filter(|&v| net.is_bus(v)).collect();
    let procs = net.processors();
    for x in 0..n_objects as u32 {
        let x = ObjectId(x);
        if buses.is_empty() || procs.len() < 2 {
            m.add(procs[0], x, 0, weight);
            continue;
        }
        let bus = buses[rng.gen_range(0..buses.len())];
        // Pick two processors whose paths to each other pass through `bus`:
        // one per distinct neighbor subtree.
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        for &p in procs {
            let towards = if p == bus { continue } else { net.step_towards(bus, p) };
            match groups.iter_mut().find(|g| net.step_towards(bus, g[0]) == towards) {
                Some(g) => g.push(p),
                None => groups.push(vec![p]),
            }
        }
        if groups.len() >= 2 {
            let a = &groups[0];
            let b = &groups[1];
            let pa = a[rng.gen_range(0..a.len())];
            let pb = b[rng.gen_range(0..b.len())];
            m.add(pa, x, 0, weight);
            m.add(pb, x, 0, weight);
        } else {
            m.add(procs[rng.gen_range(0..procs.len())], x, 0, weight);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::{balanced, star, BandwidthProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        balanced(3, 2, BandwidthProfile::Uniform)
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 10);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "rank 0 should dominate: {counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn uniform_density_controls_nnz() {
        let t = net();
        let mut rng = StdRng::seed_from_u64(3);
        let full = uniform(&t, 4, 5, 5, 1.0, &mut rng);
        // density 1.0 keeps every pair except all-zero draws.
        assert!(full.nnz() >= 30);
        let mut rng = StdRng::seed_from_u64(3);
        let empty = uniform(&t, 4, 5, 5, 0.0, &mut rng);
        assert_eq!(empty.nnz(), 0);
        full.validate(&t).unwrap();
    }

    #[test]
    fn zipf_read_mostly_counts_requests() {
        let t = net();
        let mut rng = StdRng::seed_from_u64(4);
        let m = zipf_read_mostly(&t, 8, 1000, 1.0, 0.1, &mut rng);
        assert_eq!(m.grand_total(), 1000);
        let writes: u64 = m.objects().map(|x| m.write_contention(x)).sum();
        assert!(writes > 40 && writes < 250, "≈10% writes, got {writes}");
        m.validate(&t).unwrap();
    }

    #[test]
    fn producer_consumer_shape() {
        let t = net();
        let mut rng = StdRng::seed_from_u64(5);
        let m = producer_consumer(&t, 6, 3, 10, 5, &mut rng);
        for x in m.objects() {
            assert_eq!(m.write_contention(x), 10, "one producer with 10 writes");
            assert_eq!(m.total_reads(x), 15, "three consumers with 5 reads");
            assert_eq!(m.object_entries(x).len(), 4);
        }
        m.validate(&t).unwrap();
    }

    #[test]
    fn shared_write_maximises_contention() {
        let t = net();
        let m = shared_write(&t, 2, 1, 3);
        for x in m.objects() {
            assert_eq!(m.write_contention(x), 3 * t.n_processors() as u64);
        }
        m.validate(&t).unwrap();
    }

    #[test]
    fn hotspot_scales_hot_processors() {
        let t = net();
        let mut rng = StdRng::seed_from_u64(6);
        let m = hotspot(&t, 1, 0.25, 10, 2, 1, &mut rng);
        let x = ObjectId(0);
        let weights: Vec<u64> = t.processors().iter().map(|&p| m.total(p, x)).collect();
        let hot = weights.iter().filter(|&&w| w == 30).count();
        let cold = weights.iter().filter(|&&w| w == 3).count();
        assert_eq!(hot + cold, t.n_processors());
        assert_eq!(hot, 3, "25% of 9 processors, rounded up");
        m.validate(&t).unwrap();
    }

    #[test]
    fn balanced_split_puts_weight_in_two_subtrees() {
        let t = net();
        let mut rng = StdRng::seed_from_u64(7);
        let m = balanced_split(&t, 10, 4, &mut rng);
        for x in m.objects() {
            let entries = m.object_entries(x);
            assert!(!entries.is_empty());
            let total: u64 = entries.iter().map(|e| e.writes).sum();
            assert!(total == 4 || total == 8);
        }
        m.validate(&t).unwrap();
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let t = star(6, 2);
        let a = zipf_read_mostly(&t, 5, 500, 0.8, 0.2, &mut StdRng::seed_from_u64(9));
        let b = zipf_read_mostly(&t, 5, 500, 0.8, 0.2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
