//! Read and write frequency matrices `h_r, h_w : P × X → N`.
//!
//! The matrices are stored sparsely per object: most realistic workloads
//! touch each object from a handful of processors, and the paper's
//! algorithms iterate per object anyway.

use crate::objects::ObjectId;
use hbn_topology::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// Read/write counts of one processor on one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEntry {
    /// The requesting processor (a leaf of the network).
    pub processor: NodeId,
    /// `h_r(P, x)` — number of read requests.
    pub reads: u64,
    /// `h_w(P, x)` — number of write requests.
    pub writes: u64,
}

impl AccessEntry {
    /// Total requests `h_r + h_w` of this entry.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Sparse read/write frequency matrices for a set of shared objects.
///
/// Entries with `reads = writes = 0` are dropped; per object the entries
/// are kept sorted by processor id, so iteration order is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessMatrix {
    /// `per_object[x]` lists the processors accessing object `x`.
    per_object: Vec<Vec<AccessEntry>>,
}

impl AccessMatrix {
    /// An all-zero matrix over `n_objects` objects.
    pub fn new(n_objects: usize) -> Self {
        AccessMatrix { per_object: vec![Vec::new(); n_objects] }
    }

    /// Number of objects `|X|`.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.per_object.len()
    }

    /// Iterate over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.n_objects() as u32).map(ObjectId)
    }

    /// Append a fresh all-zero object and return its id.
    pub fn push_object(&mut self) -> ObjectId {
        self.per_object.push(Vec::new());
        ObjectId(self.per_object.len() as u32 - 1)
    }

    /// Add `reads`/`writes` accesses from `processor` to `x` (saturating).
    pub fn add(&mut self, processor: NodeId, x: ObjectId, reads: u64, writes: u64) {
        if reads == 0 && writes == 0 {
            return;
        }
        let entries = &mut self.per_object[x.index()];
        match entries.binary_search_by_key(&processor, |e| e.processor) {
            Ok(i) => {
                entries[i].reads = entries[i].reads.saturating_add(reads);
                entries[i].writes = entries[i].writes.saturating_add(writes);
            }
            Err(i) => entries.insert(i, AccessEntry { processor, reads, writes }),
        }
    }

    /// Overwrite the access counts of `(processor, x)`.
    pub fn set(&mut self, processor: NodeId, x: ObjectId, reads: u64, writes: u64) {
        let entries = &mut self.per_object[x.index()];
        match entries.binary_search_by_key(&processor, |e| e.processor) {
            Ok(i) => {
                if reads == 0 && writes == 0 {
                    entries.remove(i);
                } else {
                    entries[i] = AccessEntry { processor, reads, writes };
                }
            }
            Err(i) => {
                if reads != 0 || writes != 0 {
                    entries.insert(i, AccessEntry { processor, reads, writes });
                }
            }
        }
    }

    /// `h_r(P, x)`.
    pub fn reads(&self, processor: NodeId, x: ObjectId) -> u64 {
        self.entry(processor, x).map_or(0, |e| e.reads)
    }

    /// `h_w(P, x)`.
    pub fn writes(&self, processor: NodeId, x: ObjectId) -> u64 {
        self.entry(processor, x).map_or(0, |e| e.writes)
    }

    /// `h(P, x) = h_r + h_w`.
    pub fn total(&self, processor: NodeId, x: ObjectId) -> u64 {
        self.entry(processor, x).map_or(0, |e| e.total())
    }

    fn entry(&self, processor: NodeId, x: ObjectId) -> Option<&AccessEntry> {
        let entries = &self.per_object[x.index()];
        entries.binary_search_by_key(&processor, |e| e.processor).ok().map(|i| &entries[i])
    }

    /// All non-zero entries of object `x`, sorted by processor id.
    #[inline]
    pub fn object_entries(&self, x: ObjectId) -> &[AccessEntry] {
        &self.per_object[x.index()]
    }

    /// Write contention `κ_x = Σ_P h_w(P, x)` (paper, Section 3, step 2).
    pub fn write_contention(&self, x: ObjectId) -> u64 {
        self.per_object[x.index()].iter().map(|e| e.writes).sum()
    }

    /// Total reads `Σ_P h_r(P, x)`.
    pub fn total_reads(&self, x: ObjectId) -> u64 {
        self.per_object[x.index()].iter().map(|e| e.reads).sum()
    }

    /// Total weight `h_x = Σ_P (h_r + h_w)(P, x)`.
    pub fn total_weight(&self, x: ObjectId) -> u64 {
        self.per_object[x.index()].iter().map(|e| e.total()).sum()
    }

    /// Number of non-zero entries across all objects.
    pub fn nnz(&self) -> usize {
        self.per_object.iter().map(Vec::len).sum()
    }

    /// Grand total of all requests in the workload.
    pub fn grand_total(&self) -> u64 {
        self.objects().map(|x| self.total_weight(x)).sum()
    }

    /// Check that every entry names a processor of `net` (not a bus) and
    /// has non-zero weight.
    pub fn validate(&self, net: &Network) -> Result<(), WorkloadError> {
        for x in self.objects() {
            for e in self.object_entries(x) {
                if e.processor.index() >= net.n_nodes() || !net.is_processor(e.processor) {
                    return Err(WorkloadError::NotAProcessor { processor: e.processor, object: x });
                }
                if e.total() == 0 {
                    return Err(WorkloadError::EmptyEntry { processor: e.processor, object: x });
                }
            }
        }
        Ok(())
    }
}

/// Errors raised by workload validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// An access entry names a node that is not a processor of the network.
    NotAProcessor {
        /// The offending node.
        processor: NodeId,
        /// The object the entry belongs to.
        object: ObjectId,
    },
    /// An access entry has zero reads and writes (should have been dropped).
    EmptyEntry {
        /// The entry's processor.
        processor: NodeId,
        /// The entry's object.
        object: ObjectId,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NotAProcessor { processor, object } => {
                write!(f, "access to {object} from {processor}, which is not a processor")
            }
            WorkloadError::EmptyEntry { processor, object } => {
                write!(f, "empty access entry ({processor}, {object})")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::star;

    #[test]
    fn add_set_get() {
        let mut m = AccessMatrix::new(2);
        let p = NodeId(1);
        let x = ObjectId(0);
        m.add(p, x, 3, 2);
        m.add(p, x, 1, 0);
        assert_eq!(m.reads(p, x), 4);
        assert_eq!(m.writes(p, x), 2);
        assert_eq!(m.total(p, x), 6);
        m.set(p, x, 7, 0);
        assert_eq!(m.reads(p, x), 7);
        assert_eq!(m.writes(p, x), 0);
        m.set(p, x, 0, 0);
        assert_eq!(m.total(p, x), 0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn zero_adds_are_dropped() {
        let mut m = AccessMatrix::new(1);
        m.add(NodeId(1), ObjectId(0), 0, 0);
        assert_eq!(m.nnz(), 0);
        assert!(m.object_entries(ObjectId(0)).is_empty());
    }

    #[test]
    fn contention_and_weights() {
        let mut m = AccessMatrix::new(1);
        let x = ObjectId(0);
        m.add(NodeId(1), x, 5, 1);
        m.add(NodeId(2), x, 0, 4);
        assert_eq!(m.write_contention(x), 5);
        assert_eq!(m.total_reads(x), 5);
        assert_eq!(m.total_weight(x), 10);
        assert_eq!(m.grand_total(), 10);
    }

    #[test]
    fn entries_sorted_by_processor() {
        let mut m = AccessMatrix::new(1);
        let x = ObjectId(0);
        m.add(NodeId(9), x, 1, 0);
        m.add(NodeId(2), x, 1, 0);
        m.add(NodeId(5), x, 1, 0);
        let procs: Vec<u32> = m.object_entries(x).iter().map(|e| e.processor.0).collect();
        assert_eq!(procs, vec![2, 5, 9]);
    }

    #[test]
    fn validate_catches_bus_access() {
        let net = star(3, 1); // node 0 is the bus, 1..3 processors
        let mut m = AccessMatrix::new(1);
        m.add(NodeId(1), ObjectId(0), 1, 0);
        assert!(m.validate(&net).is_ok());
        m.add(NodeId(0), ObjectId(0), 1, 0);
        assert!(matches!(m.validate(&net), Err(WorkloadError::NotAProcessor { .. })));
    }

    #[test]
    fn push_object_grows() {
        let mut m = AccessMatrix::new(0);
        let x0 = m.push_object();
        let x1 = m.push_object();
        assert_eq!((x0, x1), (ObjectId(0), ObjectId(1)));
        assert_eq!(m.n_objects(), 2);
    }
}
