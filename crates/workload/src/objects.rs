//! Identifiers for shared data objects.

use serde::{Deserialize, Serialize};

/// Index of a shared data object in `0..|X|`.
///
/// Objects are the unit of placement: global variables of a parallel
/// program, pages or cache lines of a virtual shared memory, or WWW pages
/// (paper, Section 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The object index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ObjectId {
    #[inline]
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(ObjectId(3).to_string(), "x3");
        assert_eq!(ObjectId(3).index(), 3);
        assert_eq!(ObjectId::from(3u32), ObjectId(3));
    }
}
