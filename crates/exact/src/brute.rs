//! Exact solvers for small instances: branch-and-bound over non-redundant
//! placements, restricted redundant search, and exhaustive per-edge minima
//! for validating Theorem 3.1.
//!
//! Non-redundant placement fixes one leaf per object (so the reference
//! copies are forced and no broadcast occurs beyond the write path), which
//! is exactly the regime of the NP-hardness proof — and, as the paper
//! notes, loses nothing when all requests are writes, since every optimal
//! placement is then non-redundant.

use hbn_load::{LoadMap, LoadRatio, Placement};
use hbn_topology::{Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// An optimal placement.
    pub placement: Placement,
    /// Its congestion.
    pub congestion: LoadRatio,
    /// Number of search nodes explored (for the NP-hardness scaling
    /// experiment).
    pub nodes_explored: u64,
}

/// Exact optimal **non-redundant** placement via branch-and-bound over
/// `|P|^|X|` assignments. Objects are ordered by decreasing weight; a
/// branch is cut as soon as its partial congestion reaches the incumbent.
///
/// Practical up to roughly `|P|^|X| ≈ 10^8` thanks to pruning; intended
/// for experiment-scale instances only.
pub fn optimal_nonredundant(net: &Network, matrix: &AccessMatrix) -> ExactSolution {
    let mut order: Vec<ObjectId> = matrix.objects().collect();
    order.sort_by_key(|&x| std::cmp::Reverse(matrix.total_weight(x)));
    order.retain(|&x| matrix.total_weight(x) > 0);

    // Candidate leaves and, per object, the load delta each leaf choice
    // adds to every edge (precomputed once: object count × leaves × edges
    // stays tiny on experiment instances).
    let procs = net.processors().to_vec();
    let deltas: Vec<Vec<LoadMap>> = order
        .iter()
        .map(|&x| {
            procs
                .iter()
                .map(|&leaf| {
                    let pl = single_object_leaf_placement(net, matrix, x, leaf);
                    LoadMap::from_object(net, matrix, &pl, x)
                })
                .collect()
        })
        .collect();

    let mut best_choice: Vec<usize> = vec![0; order.len()];
    let mut best = LoadRatio::new(u64::MAX, 1);
    let mut current = LoadMap::zero(net);
    let mut choice: Vec<usize> = vec![0; order.len()];
    let mut explored = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        net: &Network,
        deltas: &[Vec<LoadMap>],
        depth: usize,
        current: &mut LoadMap,
        choice: &mut Vec<usize>,
        best: &mut LoadRatio,
        best_choice: &mut Vec<usize>,
        explored: &mut u64,
    ) {
        *explored += 1;
        let congestion = current.congestion(net).congestion;
        if congestion >= *best {
            return; // adding objects never lowers congestion
        }
        if depth == deltas.len() {
            *best = congestion;
            best_choice.clone_from(choice);
            return;
        }
        for (li, delta) in deltas[depth].iter().enumerate() {
            current.add_assign(delta);
            choice[depth] = li;
            recurse(net, deltas, depth + 1, current, choice, best, best_choice, explored);
            current.sub_assign(delta);
        }
    }
    recurse(net, &deltas, 0, &mut current, &mut choice, &mut best, &mut best_choice, &mut explored);

    let mut placement = Placement::new(matrix.n_objects());
    for (i, &x) in order.iter().enumerate() {
        let leaf = procs[best_choice[i]];
        let single = single_object_leaf_placement(net, matrix, x, leaf);
        placement.set_copies(x, single.copies(x).to_vec());
        placement.set_assignment(x, single.assignment(x).to_vec());
    }
    let congestion = LoadMap::from_placement(net, matrix, &placement).congestion(net).congestion;
    ExactSolution { placement, congestion, nodes_explored: explored }
}

/// Exact decision variant of the static placement problem (Section 2): is
/// there a non-redundant placement with congestion at most `threshold`?
pub fn nonredundant_within(net: &Network, matrix: &AccessMatrix, threshold: LoadRatio) -> bool {
    optimal_nonredundant(net, matrix).congestion <= threshold
}

/// Optimal **redundant** placement restricted to nearest-copy assignments:
/// enumerates every non-empty leaf subset per object. This upper-bounds
/// the true optimum (which could route requests away from nearest copies);
/// combined with the certified lower bound it sandwiches `C_opt`.
///
/// Exponential in `|P|` — use only on tiny instances.
pub fn optimal_redundant_nearest(net: &Network, matrix: &AccessMatrix) -> ExactSolution {
    let procs = net.processors().to_vec();
    assert!(procs.len() <= 16, "2^|P| subsets; keep instances tiny");
    let mut order: Vec<ObjectId> = matrix.objects().collect();
    order.retain(|&x| matrix.total_weight(x) > 0);
    order.sort_by_key(|&x| std::cmp::Reverse(matrix.total_weight(x)));

    // Per object, per subset mask: the load delta.
    let deltas: Vec<Vec<LoadMap>> = order
        .iter()
        .map(|&x| {
            (1u32..(1 << procs.len()))
                .map(|mask| {
                    let copies: Vec<NodeId> = procs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &p)| p)
                        .collect();
                    let mut pl = Placement::new(matrix.n_objects());
                    pl.set_copies(x, copies);
                    pl.nearest_assignment_for(net, matrix, x);
                    LoadMap::from_object(net, matrix, &pl, x)
                })
                .collect()
        })
        .collect();

    let mut best_choice = vec![0usize; order.len()];
    let mut best = LoadRatio::new(u64::MAX, 1);
    let mut current = LoadMap::zero(net);
    let mut choice = vec![0usize; order.len()];
    let mut explored = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        net: &Network,
        deltas: &[Vec<LoadMap>],
        depth: usize,
        current: &mut LoadMap,
        choice: &mut Vec<usize>,
        best: &mut LoadRatio,
        best_choice: &mut Vec<usize>,
        explored: &mut u64,
    ) {
        *explored += 1;
        if current.congestion(net).congestion >= *best {
            return;
        }
        if depth == deltas.len() {
            *best = current.congestion(net).congestion;
            best_choice.clone_from(choice);
            return;
        }
        for (si, delta) in deltas[depth].iter().enumerate() {
            current.add_assign(delta);
            choice[depth] = si;
            recurse(net, deltas, depth + 1, current, choice, best, best_choice, explored);
            current.sub_assign(delta);
        }
    }
    recurse(net, &deltas, 0, &mut current, &mut choice, &mut best, &mut best_choice, &mut explored);

    let mut placement = Placement::new(matrix.n_objects());
    for (i, &x) in order.iter().enumerate() {
        let mask = best_choice[i] as u32 + 1;
        let copies: Vec<NodeId> =
            procs.iter().enumerate().filter(|(j, _)| mask >> j & 1 == 1).map(|(_, &p)| p).collect();
        placement.set_copies(x, copies);
        placement.nearest_assignment_for(net, matrix, x);
    }
    let congestion = LoadMap::from_placement(net, matrix, &placement).congestion(net).congestion;
    ExactSolution { placement, congestion, nodes_explored: explored }
}

/// For a single object: the exact minimum achievable load on every edge,
/// over **all** copy sets (any nodes, buses included) and **all**
/// assignments — the quantity the nibble placement provably attains
/// simultaneously (Theorem 3.1). Exhaustive; tiny instances only.
pub fn min_edge_loads_exhaustive(net: &Network, matrix: &AccessMatrix, x: ObjectId) -> Vec<u64> {
    let n = net.n_nodes();
    assert!(n <= 12, "2^|V| subsets; keep instances tiny");
    let entries = matrix.object_entries(x).to_vec();
    let kappa = matrix.write_contention(x);
    let mut minima = vec![u64::MAX; n];
    for mask in 1u32..(1 << n) {
        let copies: Vec<NodeId> =
            (0..n as u32).filter(|i| mask >> i & 1 == 1).map(NodeId).collect();
        // For a fixed copy set, each requester independently picks the
        // server minimising... no single choice minimises all edges at
        // once, so enumerate assignments too (|copies|^|entries|).
        let combos = copies.len().pow(entries.len() as u32);
        if combos > 1 << 16 {
            continue; // unreachable at the asserted sizes, defensive
        }
        let steiner = hbn_topology::steiner::steiner_edges(net, &copies);
        for combo in 0..combos {
            let mut loads = vec![0u64; n];
            let mut c = combo;
            for e in &entries {
                let server = copies[c % copies.len()];
                c /= copies.len();
                for edge in net.path_edges_iter(e.processor, server) {
                    loads[edge.index()] += e.reads + e.writes;
                }
            }
            for &edge in &steiner {
                loads[edge.index()] += kappa;
            }
            for e in net.edges() {
                minima[e.index()] = minima[e.index()].min(loads[e.index()]);
            }
        }
    }
    minima
}

/// Single-object leaf placement helper.
fn single_object_leaf_placement(
    net: &Network,
    matrix: &AccessMatrix,
    x: ObjectId,
    leaf: NodeId,
) -> Placement {
    let mut pl = Placement::new(matrix.n_objects());
    pl.add_copy(x, leaf);
    let entries = matrix
        .object_entries(x)
        .iter()
        .map(|e| hbn_load::AssignmentEntry {
            processor: e.processor,
            server: leaf,
            reads: e.reads,
            writes: e.writes,
        })
        .collect();
    pl.set_assignment(x, entries);
    debug_assert!(net.is_processor(leaf));
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_core::{nibble_placement, ExtendedNibble};
    use hbn_topology::generators::star;
    use hbn_workload::generators as wgen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn nonredundant_beats_every_explicit_choice() {
        let net = star(4, 10);
        let p = net.processors();
        let mut m = AccessMatrix::new(2);
        m.add(p[0], ObjectId(0), 3, 2);
        m.add(p[1], ObjectId(0), 1, 1);
        m.add(p[2], ObjectId(1), 4, 0);
        m.add(p[3], ObjectId(1), 0, 2);
        let sol = optimal_nonredundant(&net, &m);
        // Exhaustive cross-check over all 16 assignments.
        for l0 in p {
            for l1 in p {
                let pl = Placement::single_leaf(&net, &m, |x| if x.0 == 0 { *l0 } else { *l1 });
                let c = LoadMap::from_placement(&net, &m, &pl).congestion(&net).congestion;
                assert!(sol.congestion <= c);
            }
        }
    }

    #[test]
    fn redundant_never_worse_than_nonredundant() {
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..10 {
            let net = star(4, 4);
            let mut m = AccessMatrix::new(2);
            for x in 0..2u32 {
                for &p in net.processors() {
                    if rng.gen_bool(0.8) {
                        m.add(p, ObjectId(x), rng.gen_range(0..5), rng.gen_range(0..3));
                    }
                }
            }
            let nr = optimal_nonredundant(&net, &m);
            let red = optimal_redundant_nearest(&net, &m);
            assert!(red.congestion <= nr.congestion);
        }
    }

    /// Theorem 3.1 verified against brute force: the nibble placement
    /// attains the exhaustive per-edge minimum on every edge.
    #[test]
    fn nibble_attains_min_edge_loads() {
        let mut rng = StdRng::seed_from_u64(71);
        let net = star(4, 10); // 5 nodes → 2^5 subsets
        for round in 0..10 {
            let mut m = AccessMatrix::new(1);
            for &p in net.processors() {
                if rng.gen_bool(0.8) {
                    m.add(p, ObjectId(0), rng.gen_range(0..4), rng.gen_range(0..3));
                }
            }
            if m.total_weight(ObjectId(0)) == 0 {
                continue;
            }
            let minima = min_edge_loads_exhaustive(&net, &m, ObjectId(0));
            let nib = nibble_placement(&net, &m);
            let loads = LoadMap::from_placement(&net, &m, &nib);
            for e in net.edges() {
                assert_eq!(
                    loads.edge_load(e),
                    minima[e.index()],
                    "round {round}: nibble must attain the minimum on {e}"
                );
            }
        }
    }

    /// The headline sandwich: certified LB ≤ C_opt ≤ redundant-nearest, and
    /// the extended-nibble congestion is within 7× of the exact optimum.
    #[test]
    fn extended_nibble_within_seven_of_exact() {
        let mut rng = StdRng::seed_from_u64(72);
        for round in 0..8 {
            let net = star(5, 3);
            let m = wgen::uniform(&net, 3, 4, 3, 0.8, &mut rng);
            let out = ExtendedNibble::new().place(&net, &m).unwrap();
            let ext = LoadMap::from_placement(&net, &m, &out.placement).congestion(&net).congestion;
            let opt = optimal_redundant_nearest(&net, &m).congestion;
            assert!(ext.le_scaled(7, opt), "round {round}: {ext} > 7 × {opt}");
        }
    }

    #[test]
    fn empty_matrix_is_trivially_optimal() {
        let net = star(3, 2);
        let m = AccessMatrix::new(2);
        let sol = optimal_nonredundant(&net, &m);
        assert_eq!(sol.congestion, LoadRatio::new(0, 1));
    }
}
