//! The PARTITION problem, the NP-complete source of the Theorem 2.1
//! reduction.
//!
//! Given integers `k_1, …, k_n` with `Σ k_i = 2k`, decide whether some
//! subset sums to exactly `k`. The pseudo-polynomial dynamic program here
//! both decides the instance and recovers a witness subset, so the
//! reduction experiment can verify equivalence in both directions.

use serde::{Deserialize, Serialize};

/// A PARTITION instance with even total sum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionInstance {
    items: Vec<u64>,
}

/// Construction error: PARTITION requires an even total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OddTotal(pub u64);

impl std::fmt::Display for OddTotal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PARTITION requires an even total, got {}", self.0)
    }
}

impl std::error::Error for OddTotal {}

impl PartitionInstance {
    /// Wrap items; the total must be even (the paper normalises to `2k`).
    pub fn new(items: Vec<u64>) -> Result<Self, OddTotal> {
        let total: u64 = items.iter().sum();
        if !total.is_multiple_of(2) {
            return Err(OddTotal(total));
        }
        Ok(PartitionInstance { items })
    }

    /// The items `k_1, …, k_n`.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Half the total sum (`k` in the paper's notation).
    pub fn half_sum(&self) -> u64 {
        self.items.iter().sum::<u64>() / 2
    }

    /// Decide the instance and return a witness subset (as a membership
    /// mask over items) when one exists. `O(n · k)` time and space.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let k = self.half_sum() as usize;
        let n = self.items.len();
        // reach[s] = index of the item that first reached sum s (+1), 0 if
        // unreached; lets us backtrack a witness.
        let mut reach = vec![usize::MAX; k + 1];
        reach[0] = n; // sentinel: sum 0 needs no items
        for (i, &item) in self.items.iter().enumerate() {
            let item = item as usize;
            if item > k {
                continue;
            }
            // Iterate downwards so each item is used at most once.
            for s in (item..=k).rev() {
                if reach[s] == usize::MAX && reach[s - item] != usize::MAX && reach[s - item] != i {
                    // `reach[s - item] != i` cannot fire with downward
                    // iteration, but keeps the intent explicit.
                    reach[s] = i;
                }
            }
        }
        if reach[k] == usize::MAX {
            return None;
        }
        let mut mask = vec![false; n];
        let mut s = k;
        while s > 0 {
            let i = reach[s];
            debug_assert!(i < n);
            mask[i] = true;
            s -= self.items[i] as usize;
        }
        debug_assert_eq!(
            mask.iter().zip(&self.items).filter(|(m, _)| **m).map(|(_, &it)| it).sum::<u64>(),
            self.half_sum()
        );
        Some(mask)
    }

    /// Whether the instance is a yes-instance.
    pub fn is_yes(&self) -> bool {
        self.solve().is_some()
    }
}

/// A guaranteed yes-instance: two mirrored halves plus optional padding
/// pairs.
pub fn yes_instance(half: &[u64]) -> PartitionInstance {
    let mut items = half.to_vec();
    items.extend_from_slice(half);
    PartitionInstance::new(items).expect("mirrored halves have an even total")
}

/// A guaranteed no-instance: powers of two can only balance if the two
/// largest coincide, so `[1, 2, 4, …, 2^(n−1), 2^(n−1) + 1]` with an even
/// total and no equal split. Concretely `{2, 4, 8, …, 2^n, 2}` fails when
/// the largest exceeds the sum of the rest.
pub fn no_instance(n: usize) -> PartitionInstance {
    assert!(n >= 2);
    // {2, 2, 8} style: largest item > sum of the others, total even.
    let mut items: Vec<u64> = (0..n - 1).map(|i| 2 << i).collect();
    let rest: u64 = items.iter().sum();
    items.push(rest + 2); // strictly dominates; total = 2·rest + 2 is even
    PartitionInstance::new(items).expect("even total by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_odd_total() {
        assert!(PartitionInstance::new(vec![1, 2]).is_err());
        assert!(PartitionInstance::new(vec![1, 1]).is_ok());
    }

    #[test]
    fn solves_simple_yes() {
        let inst = PartitionInstance::new(vec![3, 1, 1, 2, 2, 1]).unwrap();
        let mask = inst.solve().expect("3+2 = 1+1+2+1 = 5");
        let sum: u64 = mask.iter().zip(inst.items()).filter(|(m, _)| **m).map(|(_, &i)| i).sum();
        assert_eq!(sum, inst.half_sum());
    }

    #[test]
    fn detects_no_instance() {
        let inst = PartitionInstance::new(vec![2, 2, 8]).unwrap();
        assert!(!inst.is_yes());
        for n in 2..8 {
            assert!(!no_instance(n).is_yes(), "n = {n}");
        }
    }

    #[test]
    fn yes_instances_are_yes() {
        for half in [vec![1], vec![5, 7], vec![2, 2, 9], vec![10, 1, 1, 1]] {
            assert!(yes_instance(&half).is_yes(), "half = {half:?}");
        }
    }

    #[test]
    fn brute_force_agreement_on_small_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        for _ in 0..100 {
            let n = rng.gen_range(1..9);
            let mut items: Vec<u64> = (0..n).map(|_| rng.gen_range(1..12)).collect();
            if items.iter().sum::<u64>() % 2 == 1 {
                items.push(1);
            }
            let inst = PartitionInstance::new(items.clone()).unwrap();
            let total: u64 = items.iter().sum();
            let brute = (0u32..1 << items.len()).any(|mask| {
                let s: u64 = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v)
                    .sum();
                2 * s == total
            });
            assert_eq!(inst.is_yes(), brute, "items = {items:?}");
        }
    }

    #[test]
    fn zero_items_partition_trivially() {
        let inst = PartitionInstance::new(vec![]).unwrap();
        assert!(inst.is_yes(), "empty set sums to 0 = half of 0");
    }
}
