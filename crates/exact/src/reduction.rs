//! The Theorem 2.1 reduction: PARTITION ≤p static placement on a 4-ary
//! tree of height 1 (paper, Section 2, Figure 3).
//!
//! Given `k_1, …, k_n` with `Σ k_i = 2k`, the reduction builds the star
//! with one bus and four processors `a, b, s, s̄`, shared objects
//! `x_1, …, x_n, y`, and write frequencies
//!
//! ```text
//! h_w(a, y) = 4k + 1      h_w(b, y) = 2k
//! h_w(v, x_i) = k_i       for every v ∈ {a, b, s, s̄}
//! ```
//!
//! (all other rates 0, bus bandwidth large enough that edges dominate).
//! A non-redundant placement with congestion ≤ 4k exists iff some subset
//! of the `k_i` sums to `k`: `y` is pinned to `a`, each edge `e_a`, `e_b`
//! already carries `4k`, so every `x_i` must go to `s` or `s̄` — and the
//! load on `e_s` is `2k + 2 Σ_{i∈S} k_i`, which stays within `4k` exactly
//! when `S` sums to at most `k` on **both** sides, i.e. exactly `k`.

use crate::partition::PartitionInstance;
use hbn_load::{LoadMap, LoadRatio, Placement};
use hbn_topology::generators::star;
use hbn_topology::{Network, NodeId};
use hbn_workload::{AccessMatrix, ObjectId};

/// The placement instance produced by the reduction.
#[derive(Debug, Clone)]
pub struct ReductionInstance {
    /// The 4-ary star of Figure 3.
    pub net: Network,
    /// Write frequencies encoding the PARTITION items.
    pub matrix: AccessMatrix,
    /// Half the total item sum (`k`).
    pub k: u64,
    /// The decision threshold: congestion `≤ 4k`.
    pub threshold: LoadRatio,
    /// Leaves in the paper's naming order: `a, b, s, s̄`.
    pub leaves: [NodeId; 4],
    /// Object id of `y` (the `x_i` are `0..n`).
    pub y: ObjectId,
}

/// Build the reduction for a PARTITION instance.
pub fn encode_partition(instance: &PartitionInstance) -> ReductionInstance {
    let k = instance.half_sum();
    let n = instance.items().len();
    // Bus bandwidth "sufficiently large such that the load on the edges is
    // dominating": total load on the bus is at most half of all traffic;
    // (12k + 4k + 1 + 2k)/2 is a safe ceiling, so make b(bus) exceed it.
    let bus_bw = 20 * k + 10;
    let net = star(4, bus_bw);
    let p = net.processors();
    let (a, b, s, s_bar) = (p[0], p[1], p[2], p[3]);

    let mut matrix = AccessMatrix::new(n + 1);
    let y = ObjectId(n as u32);
    matrix.add(a, y, 0, 4 * k + 1);
    matrix.add(b, y, 0, 2 * k);
    for (i, &ki) in instance.items().iter().enumerate() {
        for &v in &[a, b, s, s_bar] {
            matrix.add(v, ObjectId(i as u32), 0, ki);
        }
    }
    ReductionInstance {
        net,
        matrix,
        k,
        threshold: LoadRatio::integral(4 * k),
        leaves: [a, b, s, s_bar],
        y,
    }
}

impl ReductionInstance {
    /// Build the placement the completeness direction constructs from a
    /// PARTITION witness: `y` on `a`, `x_i` on `s` if `mask[i]`, else `s̄`.
    pub fn witness_placement(&self, mask: &[bool]) -> Placement {
        let [a, _, s, s_bar] = self.leaves;
        Placement::single_leaf(&self.net, &self.matrix, |x| {
            if x == self.y {
                a
            } else if mask[x.index()] {
                s
            } else {
                s_bar
            }
        })
    }

    /// Congestion of a placement on this instance.
    pub fn congestion_of(&self, placement: &Placement) -> LoadRatio {
        LoadMap::from_placement(&self.net, &self.matrix, placement).congestion(&self.net).congestion
    }

    /// The decision: does a non-redundant placement of congestion ≤ 4k
    /// exist? (Solved exactly; exponential in `n`.)
    pub fn decide_exactly(&self) -> bool {
        crate::brute::nonredundant_within(&self.net, &self.matrix, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{no_instance, yes_instance};

    #[test]
    fn witness_placement_achieves_4k() {
        let inst = yes_instance(&[3, 1, 2]);
        let red = encode_partition(&inst);
        let mask = inst.solve().expect("yes instance");
        let placement = red.witness_placement(&mask);
        placement.validate(&red.net, &red.matrix).unwrap();
        // The completeness direction of Theorem 2.1: congestion exactly 4k.
        assert_eq!(red.congestion_of(&placement), LoadRatio::integral(4 * red.k));
    }

    #[test]
    fn yes_instances_decide_yes() {
        for half in [vec![2u64, 3], vec![1, 1, 1], vec![4]] {
            let inst = yes_instance(&half);
            let red = encode_partition(&inst);
            assert!(red.decide_exactly(), "half = {half:?}");
        }
    }

    #[test]
    fn no_instances_decide_no() {
        for n in 2..5 {
            let inst = no_instance(n);
            let red = encode_partition(&inst);
            assert!(!red.decide_exactly(), "n = {n}");
        }
    }

    /// The full equivalence on random small instances — the executable
    /// statement of Theorem 2.1.
    #[test]
    fn reduction_matches_partition_decision() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(80);
        for round in 0..25 {
            let n = rng.gen_range(2..6);
            let mut items: Vec<u64> = (0..n).map(|_| rng.gen_range(1..8)).collect();
            if items.iter().sum::<u64>() % 2 == 1 {
                items.push(1);
            }
            let inst = PartitionInstance::new(items.clone()).unwrap();
            let red = encode_partition(&inst);
            assert_eq!(inst.is_yes(), red.decide_exactly(), "round {round}: items {items:?}");
        }
    }

    #[test]
    fn bus_never_dominates() {
        // The reduction's bus bandwidth keeps the bus out of the argmax.
        let inst = yes_instance(&[5, 2, 1]);
        let red = encode_partition(&inst);
        let mask = inst.solve().unwrap();
        let placement = red.witness_placement(&mask);
        let loads = LoadMap::from_placement(&red.net, &red.matrix, &placement);
        let report = loads.congestion(&red.net);
        assert!(matches!(report.bottleneck, hbn_load::Bottleneck::Edge(_)));
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use crate::partition::yes_instance;

    /// The exact solver's explored-node count grows with n — the scaling
    /// the NP-hardness experiment charts.
    #[test]
    fn search_cost_grows_with_instance_size() {
        let small = {
            let red = encode_partition(&yes_instance(&[1, 2]));
            crate::brute::optimal_nonredundant(&red.net, &red.matrix).nodes_explored
        };
        let large = {
            let red = encode_partition(&yes_instance(&[1, 2, 3, 4]));
            crate::brute::optimal_nonredundant(&red.net, &red.matrix).nodes_explored
        };
        assert!(large > 4 * small, "search should blow up: {small} -> {large}");
    }

    /// The y-object pins to leaf `a` in any within-threshold placement.
    #[test]
    fn y_must_sit_on_a() {
        let inst = yes_instance(&[2, 3]);
        let red = encode_partition(&inst);
        let sol = crate::brute::optimal_nonredundant(&red.net, &red.matrix);
        assert!(sol.congestion <= red.threshold);
        assert_eq!(sol.placement.copies(red.y), &[red.leaves[0]]);
    }
}
