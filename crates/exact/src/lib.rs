//! # hbn-exact
//!
//! Exact solvers and the NP-hardness machinery of the paper's Section 2:
//! PARTITION with a pseudo-polynomial solver, the Theorem 2.1 reduction
//! onto the 4-ary star, and branch-and-bound searches used as ground truth
//! for the approximation experiments.

#![warn(missing_docs)]

pub mod brute;
pub mod partition;
pub mod reduction;

pub use brute::{
    min_edge_loads_exhaustive, nonredundant_within, optimal_nonredundant,
    optimal_redundant_nearest, ExactSolution,
};
pub use partition::{no_instance, yes_instance, PartitionInstance};
pub use reduction::{encode_partition, ReductionInstance};
