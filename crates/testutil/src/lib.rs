//! # hbn-testutil
//!
//! Shared proptest strategies and fixtures for the hierbus test suites:
//! random hierarchical bus networks, random workloads, and combined
//! instances, all shrinkable through their generating parameters.

#![warn(missing_docs)]

use hbn_topology::generators::{random_network, BandwidthProfile};
use hbn_topology::Network;
use hbn_workload::phases::{PhaseKind, PhaseSchedule, PhaseSpec};
use hbn_workload::{AccessMatrix, ObjectId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical seeded RNG of the experiment binaries and test suites:
/// one construction point so every `exp_*` driver draws from the same
/// generator family and seeding convention.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// An independent RNG for shard `stream` of a sharded experiment, derived
/// from `base` with a splitmix64-style mix so neighbouring stream ids do
/// not produce correlated draws.
pub fn seeded_rng_stream(base: u64, stream: u64) -> StdRng {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// The canonical per-cell seed set of a sharded experiment: one
/// independent stream seed per shard, all derived from the cell's base
/// seed via [`seeded_rng_stream`]. One construction point shared by the
/// matrix experiment binaries (`exp_scenario_matrix`,
/// `exp_strategy_matrix`, `exp_session_resume`), so "the same seeds"
/// means the same derivation everywhere.
pub fn cell_seeds(cell_base: u64, shards: usize) -> Vec<u64> {
    (0..shards as u64).map(|s| seeded_rng_stream(cell_base, s).gen()).collect()
}

/// The access-pattern family registry of the scenario matrix, each
/// family as a warm-up + measured-phase schedule: a light stationary
/// warm-up (so strategies start from a populated replica state)
/// followed by the family phase itself. One construction point shared
/// by `exp_scenario_matrix`, the dynamic-kernel differential suites and
/// the per-family conformance harness, so "all families" means the same
/// schedules everywhere.
///
/// The list is append-only — several callers index families
/// positionally — and [`family_label`] matches [`PhaseKind`]
/// exhaustively, so adding a `PhaseKind` variant without registering a
/// schedule here is a compile error, not a silent coverage gap.
pub fn family_schedules(
    initial_objects: usize,
    warmup: usize,
    volume: usize,
) -> Vec<(&'static str, PhaseSchedule)> {
    let warm =
        PhaseSpec::new("warmup", PhaseKind::StaticZipf { skew: 0.8, write_fraction: 0.1 }, warmup);
    let phase = |label: &'static str, kind: PhaseKind| {
        (
            label,
            PhaseSchedule::new(
                initial_objects,
                vec![warm.clone(), PhaseSpec::new(label, kind, volume)],
            ),
        )
    };
    vec![
        phase("static-zipf", PhaseKind::StaticZipf { skew: 1.1, write_fraction: 0.1 }),
        phase(
            "hotspot-migration",
            PhaseKind::HotspotMigration {
                hot_objects: 6,
                hot_fraction: 0.8,
                migrate_every: (volume / 5).max(1),
                write_fraction: 0.2,
            },
        ),
        phase(
            "bursty",
            PhaseKind::Bursty { burst_len: 50, burst_objects: 3, write_fraction: 0.15 },
        ),
        phase(
            "mix-flip",
            PhaseKind::MixFlip {
                flip_every: (volume / 4).max(1),
                read_writes: 0.02,
                write_writes: 0.8,
                skew: 0.7,
            },
        ),
        phase(
            "object-churn",
            PhaseKind::ObjectChurn {
                churn_every: (volume / 10).max(1),
                skew: 0.9,
                write_fraction: 0.25,
            },
        ),
        phase(
            "single-bus-saturation",
            PhaseKind::SingleBusSaturation { write_fraction: 0.5, contended_objects: 2 },
        ),
        phase(
            "interference",
            PhaseKind::Interference { tenants: 3, skew: 0.9, write_fraction: 0.2 },
        ),
        phase(
            "diurnal",
            PhaseKind::Diurnal { regions: 3, rate: 8.0, skew: 0.9, write_fraction: 0.1 },
        ),
        phase(
            "flash-crowd",
            PhaseKind::FlashCrowd { rate: 6.0, boost: 4, skew: 0.8, write_fraction: 0.1 },
        ),
    ]
}

/// Labels of every registered family, in [`family_schedules`] order —
/// the conformance harness cross-checks the registry against this list.
pub const REGISTERED_FAMILIES: [&str; 9] = [
    "static-zipf",
    "hotspot-migration",
    "bursty",
    "mix-flip",
    "object-churn",
    "single-bus-saturation",
    "interference",
    "diurnal",
    "flash-crowd",
];

/// The registry label of a [`PhaseKind`]'s family. The match is
/// exhaustive **on purpose**: a new `PhaseKind` variant fails to
/// compile here until it is given a label, and the conformance harness
/// asserts the label appears in both [`REGISTERED_FAMILIES`] and
/// [`family_schedules`] — so every family is born with conformance
/// coverage.
pub fn family_label(kind: &PhaseKind) -> &'static str {
    match kind {
        PhaseKind::StaticZipf { .. } => "static-zipf",
        PhaseKind::HotspotMigration { .. } => "hotspot-migration",
        PhaseKind::Bursty { .. } => "bursty",
        PhaseKind::MixFlip { .. } => "mix-flip",
        PhaseKind::ObjectChurn { .. } => "object-churn",
        PhaseKind::SingleBusSaturation { .. } => "single-bus-saturation",
        PhaseKind::Interference { .. } => "interference",
        PhaseKind::Diurnal { .. } => "diurnal",
        PhaseKind::FlashCrowd { .. } => "flash-crowd",
    }
}

/// Parameters from which a random network is deterministically grown.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Number of buses (≥ 1).
    pub buses: usize,
    /// Number of processors (≥ 2).
    pub processors: usize,
    /// Seed for the recursive-tree growth.
    pub seed: u64,
    /// Whether to assign fat-tree style bandwidths.
    pub fat: bool,
}

impl NetworkParams {
    /// Grow the network.
    pub fn build(&self) -> Network {
        let profile = if self.fat {
            BandwidthProfile::FatTree { base: 2, cap: 32 }
        } else {
            BandwidthProfile::Uniform
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        random_network(self.buses, self.processors.max(self.buses * 2), profile, &mut rng)
    }
}

/// Strategy over random networks with at most `max_buses` buses and about
/// `max_procs` processors. Shrinks towards small trees.
pub fn arb_network(max_buses: usize, max_procs: usize) -> impl Strategy<Value = Network> {
    (1..=max_buses, 2..=max_procs.max(3), any::<u64>(), any::<bool>()).prop_map(
        |(buses, processors, seed, fat)| NetworkParams { buses, processors, seed, fat }.build(),
    )
}

/// Deterministically fill a workload over `net` from a seed: every
/// (processor, object) pair is present with probability `density` and gets
/// reads/writes below the given caps.
pub fn workload_from_seed(
    net: &Network,
    n_objects: usize,
    max_reads: u64,
    max_writes: u64,
    density: f64,
    seed: u64,
) -> AccessMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = AccessMatrix::new(n_objects);
    for x in 0..n_objects as u32 {
        for &p in net.processors() {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                m.add(p, ObjectId(x), rng.gen_range(0..=max_reads), rng.gen_range(0..=max_writes));
            }
        }
    }
    m
}

/// Strategy over `(network, workload)` instances.
pub fn arb_instance(
    max_buses: usize,
    max_procs: usize,
    max_objects: usize,
) -> impl Strategy<Value = (Network, AccessMatrix)> {
    (arb_network(max_buses, max_procs), 1..=max_objects, 0u64..8, 0u64..6, any::<u64>()).prop_map(
        |(net, objects, max_r, max_w, seed)| {
            let m = workload_from_seed(&net, objects, max_r, max_w, 0.7, seed);
            (net, m)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_networks_are_valid(net in arb_network(6, 12)) {
            net.check_invariants().unwrap();
            prop_assert!(net.n_processors() >= 2);
        }

        #[test]
        fn generated_instances_validate((net, m) in arb_instance(5, 10, 4)) {
            prop_assert!(m.validate(&net).is_ok());
        }
    }

    #[test]
    fn seeded_rngs_are_deterministic_and_streams_independent() {
        let a: u64 = seeded_rng(9).gen();
        let b: u64 = seeded_rng(9).gen();
        assert_eq!(a, b);
        let s0: u64 = seeded_rng_stream(9, 0).gen();
        let s1: u64 = seeded_rng_stream(9, 1).gen();
        assert_ne!(s0, s1, "streams must diverge");
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = cell_seeds(42, 4);
        assert_eq!(a, cell_seeds(42, 4));
        assert_eq!(a.len(), 4);
        let unique: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 4, "shard seeds must be distinct");
        assert_eq!(a[0], seeded_rng_stream(42, 0).gen::<u64>());
    }

    #[test]
    fn family_schedules_cover_every_registered_family() {
        let fams = family_schedules(12, 40, 200);
        assert_eq!(fams.len(), REGISTERED_FAMILIES.len());
        for ((label, schedule), &registered) in fams.iter().zip(REGISTERED_FAMILIES.iter()) {
            assert_eq!(*label, registered, "registry order must match REGISTERED_FAMILIES");
            assert_eq!(schedule.phases.len(), 2);
            assert_eq!(schedule.phases[0].label, "warmup");
            assert_eq!(&schedule.phases[1].label, label);
            assert_eq!(schedule.total_requests(), 240);
            assert!(schedule.max_objects() >= 12);
            assert_eq!(family_label(&schedule.phases[1].kind), *label);
        }
        // The first six are the legacy families, in their original
        // positions — several suites index them positionally.
        assert_eq!(
            &REGISTERED_FAMILIES[..6],
            &[
                "static-zipf",
                "hotspot-migration",
                "bursty",
                "mix-flip",
                "object-churn",
                "single-bus-saturation",
            ]
        );
    }

    #[test]
    fn params_build_deterministically() {
        let p = NetworkParams { buses: 4, processors: 9, seed: 11, fat: true };
        let a = p.build();
        let b = p.build();
        assert_eq!(a.n_nodes(), b.n_nodes());
    }
}
