//! # hbn-baselines
//!
//! Baseline placement strategies behind a common [`Strategy`] trait, used
//! by the comparison experiments (EXP-BASE, EXP-SIM). The interesting
//! comparison points around the paper's extended-nibble strategy are:
//!
//! * naive single-copy heuristics (random leaf, owner leaf),
//! * a congestion-aware greedy,
//! * local search refinement,
//! * the *unrestricted* nibble placement, which may use buses — infeasible
//!   in the hierarchical bus model but a certified lower bound.

#![warn(missing_docs)]

pub mod greedy;
pub mod local_search;
pub mod simple;

use hbn_load::Placement;
use hbn_topology::Network;
use hbn_workload::AccessMatrix;

/// A placement strategy: anything that turns a workload on a network into
/// a placement.
pub trait Strategy {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Compute a placement. Implementations must return placements that
    /// validate against `(net, matrix)`; all baselines here are also
    /// leaf-only except [`simple::UnrestrictedNibble`].
    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement;
}

pub use greedy::GreedyCongestion;
pub use local_search::LocalSearch;
pub use simple::{ExtendedNibbleStrategy, OwnerLeaf, RandomLeaf, UnrestrictedNibble};

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_load::LoadMap;
    use hbn_topology::generators::{balanced, BandwidthProfile};
    use hbn_workload::generators as wgen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_strategy_produces_valid_placements() {
        let net = balanced(3, 2, BandwidthProfile::Uniform);
        let mut rng = StdRng::seed_from_u64(90);
        let m = wgen::uniform(&net, 6, 5, 3, 0.6, &mut rng);
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RandomLeaf::new(1)),
            Box::new(OwnerLeaf),
            Box::new(GreedyCongestion),
            Box::new(LocalSearch::around(OwnerLeaf, 100)),
            Box::new(ExtendedNibbleStrategy::default()),
        ];
        for s in &strategies {
            let p = s.place(&net, &m);
            p.validate(&net, &m).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(p.is_leaf_only(&net), "{} must be bus-feasible", s.name());
        }
    }

    #[test]
    fn unrestricted_nibble_lower_bounds_the_leaf_strategies() {
        let net = balanced(2, 3, BandwidthProfile::Uniform);
        let mut rng = StdRng::seed_from_u64(91);
        let m = wgen::zipf_read_mostly(&net, 8, 600, 0.9, 0.4, &mut rng);
        let nib = UnrestrictedNibble.place(&net, &m);
        let nib_c = LoadMap::from_placement(&net, &m, &nib).congestion(&net).congestion;
        for s in [
            Box::new(OwnerLeaf) as Box<dyn Strategy>,
            Box::new(GreedyCongestion),
            Box::new(ExtendedNibbleStrategy::default()),
        ] {
            let p = s.place(&net, &m);
            let c = LoadMap::from_placement(&net, &m, &p).congestion(&net).congestion;
            assert!(nib_c <= c, "{} beat the lower bound", s.name());
        }
    }
}
