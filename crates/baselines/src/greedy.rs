//! Congestion-aware greedy insertion.

use crate::Strategy;
use hbn_load::{LoadMap, Placement};
use hbn_topology::Network;
use hbn_workload::{AccessMatrix, ObjectId};

/// Places objects one at a time (heaviest first), each on the single leaf
/// that minimises the congestion of the partial placement. A natural
/// quality/cost middle ground: `O(|X| · |P| · |V|)` instead of the
/// extended-nibble's near-linear time, and no replication.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyCongestion;

impl Strategy for GreedyCongestion {
    fn name(&self) -> &'static str {
        "greedy-congestion"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        let mut order: Vec<ObjectId> = matrix.objects().collect();
        order.sort_by_key(|&x| std::cmp::Reverse(matrix.total_weight(x)));
        let mut placement = Placement::new(matrix.n_objects());
        let mut current = LoadMap::zero(net);
        for x in order {
            if matrix.total_weight(x) == 0 {
                continue;
            }
            let mut best: Option<(hbn_load::LoadRatio, hbn_topology::NodeId, LoadMap)> = None;
            for &leaf in net.processors() {
                let mut trial = Placement::new(matrix.n_objects());
                trial.set_copies(x, vec![leaf]);
                trial.nearest_assignment_for(net, matrix, x);
                let delta = LoadMap::from_object(net, matrix, &trial, x);
                let mut combined = current.clone();
                combined.add_assign(&delta);
                let c = combined.congestion(net).congestion;
                let better = match &best {
                    None => true,
                    Some((bc, _, _)) => c < *bc,
                };
                if better {
                    best = Some((c, leaf, delta));
                }
            }
            let (_, leaf, delta) = best.expect("networks have at least one processor");
            current.add_assign(&delta);
            placement.set_copies(x, vec![leaf]);
            placement.nearest_assignment_for(net, matrix, x);
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_load::LoadMap;
    use hbn_topology::generators::star;
    use hbn_workload::ObjectId;

    #[test]
    fn greedy_spreads_independent_hot_objects() {
        // Two heavy objects written by everyone: putting both on one leaf
        // doubles that leaf edge's load; greedy must separate them.
        let net = star(4, 100);
        let m = hbn_workload::generators::shared_write(&net, 2, 0, 3);
        let p = GreedyCongestion.place(&net, &m);
        p.validate(&net, &m).unwrap();
        assert_ne!(
            p.copies(ObjectId(0)),
            p.copies(ObjectId(1)),
            "hot objects must land on different leaves"
        );
    }

    #[test]
    fn greedy_not_worse_than_owner_on_small_cases() {
        // Greedy is a heuristic: on a single adversarial instance it can
        // lose to owner-leaf (its per-object choices are myopic), so the
        // robust form of this check is aggregate — across seeded random
        // instances greedy must win or tie overall.
        use crate::simple::OwnerLeaf;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(95);
        let (mut greedy_total, mut owner_total) = (0.0f64, 0.0f64);
        for _ in 0..10 {
            let net = star(5, 3);
            let mut m = AccessMatrix::new(3);
            for x in 0..3u32 {
                for &p in net.processors() {
                    if rng.gen_bool(0.7) {
                        m.add(p, ObjectId(x), rng.gen_range(0..5), rng.gen_range(0..3));
                    }
                }
            }
            let g = GreedyCongestion.place(&net, &m);
            let o = OwnerLeaf.place(&net, &m);
            let gc = LoadMap::from_placement(&net, &m, &g).congestion(&net).congestion;
            let oc = LoadMap::from_placement(&net, &m, &o).congestion(&net).congestion;
            greedy_total += gc.as_f64();
            owner_total += oc.as_f64();
        }
        assert!(
            greedy_total <= owner_total,
            "greedy ({greedy_total}) must not lose to owner ({owner_total}) in aggregate"
        );
    }
}
