//! Single-copy heuristics and the two nibble-based reference strategies.

use crate::Strategy;
use hbn_load::Placement;
use hbn_topology::Network;
use hbn_workload::AccessMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Places every object on an independently uniform random leaf — the
/// "no thought" baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomLeaf {
    seed: u64,
}

impl RandomLeaf {
    /// A random-leaf strategy with a fixed seed (experiments stay
    /// reproducible).
    pub fn new(seed: u64) -> Self {
        RandomLeaf { seed }
    }
}

impl Strategy for RandomLeaf {
    fn name(&self) -> &'static str {
        "random-leaf"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let procs = net.processors();
        let mut placement = Placement::new(matrix.n_objects());
        for x in matrix.objects() {
            if matrix.total_weight(x) == 0 {
                continue;
            }
            placement.set_copies(x, vec![procs[rng.gen_range(0..procs.len())]]);
            placement.nearest_assignment_for(net, matrix, x);
        }
        placement
    }
}

/// Places every object on the processor issuing the most requests to it —
/// the classical "owner computes" heuristic of DSM systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct OwnerLeaf;

impl Strategy for OwnerLeaf {
    fn name(&self) -> &'static str {
        "owner-leaf"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        let mut placement = Placement::new(matrix.n_objects());
        for x in matrix.objects() {
            let owner = matrix
                .object_entries(x)
                .iter()
                .max_by_key(|e| (e.total(), std::cmp::Reverse(e.processor)))
                .map(|e| e.processor);
            if let Some(owner) = owner {
                placement.set_copies(x, vec![owner]);
                placement.nearest_assignment_for(net, matrix, x);
            }
        }
        let _ = net;
        placement
    }
}

/// The step-1 nibble placement with copies allowed on buses: **not** a
/// feasible hierarchical-bus placement, but the per-edge optimal reference
/// that certifies lower bounds (Theorem 3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrestrictedNibble;

impl Strategy for UnrestrictedNibble {
    fn name(&self) -> &'static str {
        "nibble-unrestricted"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        hbn_core::nibble_placement(net, matrix)
    }
}

/// The paper's contribution behind the common trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtendedNibbleStrategy {
    /// Options forwarded to [`hbn_core::ExtendedNibble`].
    pub options: hbn_core::ExtendedNibbleOptions,
}

impl Strategy for ExtendedNibbleStrategy {
    fn name(&self) -> &'static str {
        "extended-nibble"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        hbn_core::ExtendedNibble { options: self.options }
            .place(net, matrix)
            .expect("extended nibble cannot fail on valid input")
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbn_topology::generators::star;
    use hbn_workload::ObjectId;

    #[test]
    fn owner_picks_heaviest_requester() {
        let net = star(4, 4);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], ObjectId(0), 1, 0);
        m.add(p[2], ObjectId(0), 5, 2);
        m.add(p[3], ObjectId(0), 3, 0);
        let placement = OwnerLeaf.place(&net, &m);
        assert_eq!(placement.copies(ObjectId(0)), &[p[2]]);
    }

    #[test]
    fn owner_tie_breaks_to_smaller_id() {
        let net = star(3, 4);
        let p = net.processors();
        let mut m = AccessMatrix::new(1);
        m.add(p[0], ObjectId(0), 2, 0);
        m.add(p[1], ObjectId(0), 2, 0);
        let placement = OwnerLeaf.place(&net, &m);
        assert_eq!(placement.copies(ObjectId(0)), &[p[0]]);
    }

    #[test]
    fn random_leaf_is_deterministic_per_seed() {
        let net = star(6, 4);
        let mut m = AccessMatrix::new(4);
        for (i, &p) in net.processors().iter().enumerate() {
            m.add(p, ObjectId(i as u32 % 4), 2, 1);
        }
        let a = RandomLeaf::new(7).place(&net, &m);
        let b = RandomLeaf::new(7).place(&net, &m);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_objects_get_no_copies() {
        let net = star(3, 4);
        let m = AccessMatrix::new(2);
        for s in [&RandomLeaf::new(0) as &dyn Strategy, &OwnerLeaf] {
            let p = s.place(&net, &m);
            assert_eq!(p.total_copies(), 0, "{}", s.name());
        }
    }
}
