//! Hill-climbing refinement of any base strategy.

use crate::Strategy;
use hbn_load::{LoadMap, Placement};
use hbn_topology::Network;
use hbn_workload::AccessMatrix;

/// Refines a base placement by repeatedly relocating one object's single
/// copy to the leaf that lowers congestion the most, until a local optimum
/// or the move budget is reached.
///
/// Only explores non-redundant placements (single copy per object); bases
/// that replicate are first collapsed to each object's busiest copy.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch<S> {
    base: S,
    max_moves: usize,
}

impl<S: Strategy> LocalSearch<S> {
    /// Local search started from `base` with at most `max_moves`
    /// relocations.
    pub fn around(base: S, max_moves: usize) -> Self {
        LocalSearch { base, max_moves }
    }
}

impl<S: Strategy> Strategy for LocalSearch<S> {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn place(&self, net: &Network, matrix: &AccessMatrix) -> Placement {
        let base = self.base.place(net, matrix);
        // Collapse to one copy per object (most-loaded copy wins).
        let mut placement = Placement::new(matrix.n_objects());
        for x in matrix.objects() {
            if matrix.total_weight(x) == 0 {
                continue;
            }
            let copies = base.copies(x);
            let keep = match copies.len() {
                0 => continue,
                1 => copies[0],
                _ => {
                    let mut served = std::collections::BTreeMap::new();
                    for e in base.assignment(x) {
                        *served.entry(e.server).or_insert(0u64) += e.reads + e.writes;
                    }
                    served
                        .into_iter()
                        .max_by_key(|&(node, s)| (s, std::cmp::Reverse(node)))
                        .map(|(node, _)| node)
                        .unwrap_or(copies[0])
                }
            };
            // Copies may sit on buses (e.g. unrestricted nibble bases);
            // project to the nearest processor.
            let keep = if net.is_processor(keep) {
                keep
            } else {
                *hbn_load::nearest_copy_map(net, net.processors())
                    .get(keep.index())
                    .expect("in range")
            };
            placement.set_copies(x, vec![keep]);
            placement.nearest_assignment_for(net, matrix, x);
        }

        let mut current = LoadMap::from_placement(net, matrix, &placement);
        let mut moves = 0usize;
        'outer: while moves < self.max_moves {
            let mut improved = false;
            for x in matrix.objects() {
                if placement.copies(x).is_empty() {
                    continue;
                }
                let old_leaf = placement.copies(x)[0];
                let old_delta = LoadMap::from_object(net, matrix, &placement, x);
                let mut without = current.clone();
                without.sub_assign(&old_delta);
                let mut best = (current.congestion(net).congestion, old_leaf, old_delta);
                for &leaf in net.processors() {
                    if leaf == old_leaf {
                        continue;
                    }
                    let mut trial = Placement::new(matrix.n_objects());
                    trial.set_copies(x, vec![leaf]);
                    trial.nearest_assignment_for(net, matrix, x);
                    let delta = LoadMap::from_object(net, matrix, &trial, x);
                    let mut combined = without.clone();
                    combined.add_assign(&delta);
                    let c = combined.congestion(net).congestion;
                    if c < best.0 {
                        best = (c, leaf, delta);
                    }
                }
                if best.1 != old_leaf {
                    without.add_assign(&best.2);
                    current = without;
                    placement.set_copies(x, vec![best.1]);
                    placement.nearest_assignment_for(net, matrix, x);
                    moves += 1;
                    improved = true;
                    if moves >= self.max_moves {
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{OwnerLeaf, RandomLeaf};
    use hbn_topology::generators::{balanced, BandwidthProfile};
    use hbn_workload::generators as wgen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_search_never_hurts() {
        let net = balanced(2, 3, BandwidthProfile::Uniform);
        let mut rng = StdRng::seed_from_u64(96);
        for seed in 0..5 {
            let m = wgen::uniform(&net, 5, 4, 2, 0.7, &mut rng);
            let base = RandomLeaf::new(seed).place(&net, &m);
            let refined = LocalSearch::around(RandomLeaf::new(seed), 200).place(&net, &m);
            refined.validate(&net, &m).unwrap();
            let cb = LoadMap::from_placement(&net, &m, &base).congestion(&net).congestion;
            let cr = LoadMap::from_placement(&net, &m, &refined).congestion(&net).congestion;
            assert!(cr <= cb, "seed {seed}: refined {cr} worse than base {cb}");
        }
    }

    #[test]
    fn local_search_respects_move_budget() {
        let net = balanced(2, 2, BandwidthProfile::Uniform);
        let mut rng = StdRng::seed_from_u64(97);
        let m = wgen::uniform(&net, 4, 5, 2, 1.0, &mut rng);
        // Zero budget = collapse of the base only.
        let zero = LocalSearch::around(OwnerLeaf, 0).place(&net, &m);
        let owner = OwnerLeaf.place(&net, &m);
        assert_eq!(zero, owner, "owner is already single-copy; zero moves keep it");
    }
}
